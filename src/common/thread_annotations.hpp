// Thread-safety annotations — compiler-enforced lock discipline.
//
// Wraps Clang's thread-safety attributes (-Wthread-safety) in portable
// CHAINNN_* macros that expand to nothing on other compilers, plus the
// three annotated primitives the analysis needs to reason about this
// codebase: Mutex (a capability), MutexLock (a scoped holder that the
// analysis tracks across explicit Unlock()/Lock() pairs), and CondVar
// (waits require the mutex held; the release/reacquire inside wait() is
// invisible to the analysis, exactly like pthread_cond_wait).
//
// The discipline the annotations encode:
//   * every mutex-protected field is CHAINNN_GUARDED_BY(mu) — reading or
//     writing it without the mutex is a compile error under clang;
//   * private helpers that assume the lock are CHAINNN_REQUIRES(mu) —
//     calling them unlocked is a compile error;
//   * public entry points that take the lock are left unannotated (they
//     acquire via MutexLock), or CHAINNN_EXCLUDES(mu) where re-entry
//     would self-deadlock;
//   * condition waits are explicit `while (!cond) cv.wait(mu);` loops in
//     the annotated function body — predicate lambdas would escape the
//     analysis (a lambda is a separate, unannotated function).
//
// Deliberate non-uses: fields synchronized by something other than a
// mutex (std::atomic counters, data handed off through thread creation
// or join) are not GUARDED_BY anything — see serve/latency_histogram.hpp
// for the documented pattern. The wrappers add no behaviour: Mutex is
// std::mutex, MutexLock is a lock_guard with explicit unlock, CondVar is
// std::condition_variable; a non-clang build compiles the identical
// code with the attributes erased.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define CHAINNN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CHAINNN_THREAD_ANNOTATION(x)
#endif

// A type that acts as a lock: objects of it appear in the other
// annotations' capability expressions.
#define CHAINNN_CAPABILITY(x) CHAINNN_THREAD_ANNOTATION(capability(x))
// An RAII type whose constructor acquires and destructor releases.
#define CHAINNN_SCOPED_CAPABILITY CHAINNN_THREAD_ANNOTATION(scoped_lockable)

// Field access requires the given capability held.
#define CHAINNN_GUARDED_BY(x) CHAINNN_THREAD_ANNOTATION(guarded_by(x))
// Pointer field: the pointee (not the pointer) is protected.
#define CHAINNN_PT_GUARDED_BY(x) CHAINNN_THREAD_ANNOTATION(pt_guarded_by(x))

// The function may only be called with the capability already held /
// explicitly not held (the latter catches self-deadlock on re-entry).
#define CHAINNN_REQUIRES(...) \
  CHAINNN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CHAINNN_REQUIRES_SHARED(...) \
  CHAINNN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define CHAINNN_EXCLUDES(...) \
  CHAINNN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// The function acquires / releases the capability (no argument inside a
// capability or scoped-capability class means `this`).
#define CHAINNN_ACQUIRE(...) \
  CHAINNN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CHAINNN_RELEASE(...) \
  CHAINNN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CHAINNN_TRY_ACQUIRE(...) \
  CHAINNN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Escape hatches: assert the capability is held at runtime boundaries
// the analysis cannot see, name the capability a getter returns, or turn
// the analysis off for one function.
#define CHAINNN_ASSERT_CAPABILITY(x) \
  CHAINNN_THREAD_ANNOTATION(assert_capability(x))
#define CHAINNN_RETURN_CAPABILITY(x) CHAINNN_THREAD_ANNOTATION(lock_returned(x))
#define CHAINNN_NO_THREAD_SAFETY_ANALYSIS \
  CHAINNN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace chainnn {

// std::mutex as a capability the analysis can name. libstdc++'s
// std::mutex carries no attributes, so GUARDED_BY(a raw std::mutex)
// would be invisible to clang; this wrapper is what makes the analysis
// bite.
class CHAINNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CHAINNN_ACQUIRE() { mu_.lock(); }
  void unlock() CHAINNN_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() CHAINNN_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped holder the analysis understands, including the explicit
// Unlock()/Lock() dance worker loops use to drop the lock around a unit
// of work. The destructor releases only if currently held.
class CHAINNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CHAINNN_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() CHAINNN_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() CHAINNN_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void Lock() CHAINNN_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

// Condition variable over Mutex. wait() must be called with the mutex
// held and returns with it held; like pthread_cond_wait, the internal
// release/reacquire is deliberately invisible to the analysis. No
// predicate overloads on purpose: `while (!cond) cv.wait(mu);` keeps the
// guarded reads of `cond` inside the annotated caller, where the
// analysis can check them (a predicate lambda would not be).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) CHAINNN_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace chainnn
