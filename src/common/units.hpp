// Engineering units used across the Chain-NN model: operation rates,
// power, energy, memory sizes and clock frequencies.
//
// All quantities are carried as doubles in base SI units (ops/s, W, J,
// bytes, Hz); these helpers exist to make call sites read like the paper
// ("806.4 GOPS", "567.5 mW", "352 KB", "700 MHz") and to format values the
// same way the paper's tables do.
#pragma once

#include <cstdint>

namespace chainnn::units {

// --- scale factors -------------------------------------------------------
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

// Binary memory sizes (the paper uses KB = 1024 bytes: "352KB on-chip").
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;

// --- constructors ---------------------------------------------------------
[[nodiscard]] constexpr double mhz(double v) { return v * kMega; }
[[nodiscard]] constexpr double ghz(double v) { return v * kGiga; }
[[nodiscard]] constexpr double gops(double v) { return v * kGiga; }
[[nodiscard]] constexpr double mw(double v) { return v * kMilli; }
[[nodiscard]] constexpr double pj(double v) { return v * kPico; }
[[nodiscard]] constexpr double nj(double v) { return v * kNano; }
[[nodiscard]] constexpr double kib(double v) { return v * kKiB; }
[[nodiscard]] constexpr double mib(double v) { return v * kMiB; }
[[nodiscard]] constexpr double ms(double v) { return v * kMilli; }

// --- accessors (value in the named unit) ---------------------------------
[[nodiscard]] constexpr double as_mhz(double hz) { return hz / kMega; }
[[nodiscard]] constexpr double as_gops(double ops) { return ops / kGiga; }
[[nodiscard]] constexpr double as_mw(double w) { return w / kMilli; }
[[nodiscard]] constexpr double as_ms(double s) { return s / kMilli; }
[[nodiscard]] constexpr double as_kib(double b) { return b / kKiB; }
[[nodiscard]] constexpr double as_mib(double b) { return b / kMiB; }
[[nodiscard]] constexpr double as_pj(double j) { return j / kPico; }

// Throughput-per-power in GOPS/W, the paper's headline efficiency metric.
[[nodiscard]] constexpr double gops_per_watt(double ops_per_s, double watts) {
  return (ops_per_s / kGiga) / watts;
}

}  // namespace chainnn::units
