// Deterministic pseudo-random generation for tests, synthetic weights and
// activations.
//
// Uses SplitMix64 for seeding and xoshiro256** for the stream — small,
// fast, reproducible across platforms (unlike std::normal_distribution,
// whose output is implementation-defined; we ship our own Box-Muller).
#pragma once

#include <cstdint>
#include <cmath>

#include "common/check.hpp"

namespace chainnn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    have_cached_gauss_ = false;
  }

  // Uniform 64-bit value (xoshiro256**).
  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CHAINNN_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  // Standard normal via Box-Muller (deterministic across platforms).
  [[nodiscard]] double gaussian() {
    if (have_cached_gauss_) {
      have_cached_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    cached_gauss_ = mag * std::sin(two_pi * u2);
    have_cached_gauss_ = true;
    return mag * std::cos(two_pi * u2);
  }

  // Normal with given mean / stddev.
  [[nodiscard]] double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  // Full generator state, for checkpoint serialization: restore()ing a
  // snapshot() continues the stream exactly where it left off (including
  // the Box-Muller cached half, which is part of the observable output
  // sequence).
  struct Snapshot {
    std::uint64_t state[4] = {};
    bool have_cached_gauss = false;
    double cached_gauss = 0.0;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };
  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    for (int i = 0; i < 4; ++i) s.state[i] = state_[i];
    s.have_cached_gauss = have_cached_gauss_;
    s.cached_gauss = cached_gauss_;
    return s;
  }
  void restore(const Snapshot& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.state[i];
    have_cached_gauss_ = s.have_cached_gauss;
    cached_gauss_ = s.cached_gauss;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_cached_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace chainnn
