// Lightweight precondition / invariant checking for the Chain-NN libraries.
//
// CHAINNN_CHECK is always on (simulation correctness depends on catching
// misconfiguration early; the cost is negligible relative to simulation
// work). Violations throw std::logic_error with file/line context so tests
// can assert on them and applications get an actionable message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace chainnn {

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHAINNN_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace chainnn

// Checks `cond`; on failure throws std::logic_error. Additional streamed
// context may be supplied via CHAINNN_CHECK_MSG.
#define CHAINNN_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::chainnn::detail::check_failed(#cond, __FILE__, __LINE__, "");     \
  } while (false)

#define CHAINNN_CHECK_MSG(cond, msg_expr)                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg_expr;                                                    \
      ::chainnn::detail::check_failed(#cond, __FILE__, __LINE__,          \
                                      os_.str());                         \
    }                                                                     \
  } while (false)
