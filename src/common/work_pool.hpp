// Process-wide work-stealing thread pool (ROADMAP item 3).
//
// Before this pool, every BatchExecutor owned a private task pool and
// every InferenceServer a private vector of blocking worker threads, so
// a fleet of S servers each sharding over W workers could pin S*W
// threads on a host with far fewer cores. WorkPool::shared() is the one
// pool all of them now submit to, sized to hardware_concurrency.
//
// Structure: one deque per worker plus a global injection queue.
//   * submit() from a pool thread pushes onto that worker's own deque
//     (LIFO for the owner — cache-warm); from outside, onto the global
//     queue.
//   * An idle worker pops its own deque from the back, steals from the
//     other workers' fronts (FIFO for thieves — the oldest, coldest
//     work), then falls back to the global queue, then sleeps.
//   * run_batch() executes a vector of tasks with *helping* semantics:
//     items are claimed via an atomic cursor, claim tickets are enqueued
//     for the workers, and the calling thread claims items too until
//     none remain, then waits for the last claimed item to finish. The
//     caller can never deadlock waiting for a full pool — even a
//     1-worker pool running nested batches completes, because every
//     waiter first drains its own batch (the wait graph is a DAG by
//     nesting depth).
//   * submit_blocking() is the lane for tasks that may block for
//     arbitrary stretches (an InferenceServer drain parked on a user
//     hook or a deliberately slow request). Such a task must never
//     occupy one of the fixed stealing workers — on a small host that
//     starves every compute shard behind it — so the blocking lane runs
//     on cached threads grown on demand: a submit reuses a parked
//     thread when one is free and spawns a fresh one otherwise, and
//     threads park for reuse when their task completes. At any submit,
//     parked threads >= queued blocking tasks, so blocking tasks never
//     wait on each other — which is what lets two gated requests on two
//     servers make progress simultaneously on a single-core host.
//
// Bit-identity note: the pool schedules *which thread* runs a task, but
// BatchExecutor's per-shard RNG streams and result slots are indexed by
// shard number, not by thread, so sharded results remain bit-identical
// to the serial order no matter how tasks land on workers.
//
// Shutdown: the destructor stops and joins the workers. Tasks still
// queued via submit() may be dropped — owners of state referenced by
// fire-and-forget tasks (e.g. InferenceServer) must drain or fence
// their own tasks before dying; run_batch() callers are immune (the
// caller itself completes any item the workers never picked up).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace chainnn::common {

class WorkPool {
 public:
  // A dedicated pool, mainly for tests; production code shares shared().
  explicit WorkPool(std::int64_t num_threads);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  // The process-wide pool, sized to hardware_concurrency (>= 1).
  // Constructed on first use, lives until process exit.
  [[nodiscard]] static WorkPool& shared();

  // Fire-and-forget: runs `fn` on some pool worker, eventually. For
  // short compute tasks only — a task that can block must use
  // submit_blocking() or it wedges a stealing worker.
  void submit(std::function<void()> fn);

  // Fire-and-forget on the blocking lane: `fn` gets a thread of its own
  // (a parked cached thread when one is free, a fresh one otherwise)
  // and may block indefinitely without starving the stealing workers.
  void submit_blocking(std::function<void()> fn);

  // Runs every task and returns when all completed. The calling thread
  // participates (helping semantics, see file comment); tasks must
  // capture their own exception state — a throw out of a task is fatal.
  void run_batch(std::vector<std::function<void()>> tasks);

  [[nodiscard]] std::int64_t num_threads() const {
    return static_cast<std::int64_t>(workers_.size());
  }

  // True when the calling thread is one of *this* pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> tasks CHAINNN_GUARDED_BY(mu);
    std::thread thread;  // joined by ~WorkPool after stop_, not guarded
  };

  void worker_loop(std::size_t index);
  void blocking_loop();
  // Own deque (back), then steal (fronts), then the global queue.
  [[nodiscard]] bool try_pop(std::size_t index, std::function<void()>& out);
  // Routes to the caller's own deque or the global queue, then signals.
  void enqueue(std::function<void()> fn);

  // Set once in the constructor before workers start; the Worker objects
  // synchronize internally.
  std::vector<std::unique_ptr<Worker>> workers_;

  Mutex mu_;
  CondVar work_ready_;
  std::deque<std::function<void()>> injected_ CHAINNN_GUARDED_BY(mu_);
  // Bumped on every enqueue; a worker that scanned all queues empty
  // sleeps only while the epoch still matches its pre-scan read, which
  // closes the missed-wakeup race without holding mu_ during the scan.
  std::int64_t work_epoch_ CHAINNN_GUARDED_BY(mu_) = 0;
  bool stop_ CHAINNN_GUARDED_BY(mu_) = false;

  // Blocking lane. idle_blocking_ counts threads parked in
  // blocking_loop()'s wait (incremented before the wait, decremented on
  // every wake, so it tracks the *actual* parked population even under
  // spurious wakeups). submit_blocking() spawns a thread whenever the
  // queue would exceed the parked count, which keeps the invariant that
  // no queued blocking task ever waits for a running one to finish.
  CondVar blocking_ready_;
  std::deque<std::function<void()>> blocking_queue_ CHAINNN_GUARDED_BY(mu_);
  std::size_t idle_blocking_ CHAINNN_GUARDED_BY(mu_) = 0;
  std::vector<std::thread> blocking_threads_ CHAINNN_GUARDED_BY(mu_);
};

}  // namespace chainnn::common
