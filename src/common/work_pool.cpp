#include "common/work_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/check.hpp"

namespace chainnn::common {

namespace {

// Which pool (if any) the current thread belongs to, and its worker
// index there. Thread-creation hand-off synchronizes these; they are
// only ever written by the owning thread itself.
thread_local const WorkPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

}  // namespace

WorkPool::WorkPool(std::int64_t num_threads) {
  CHAINNN_CHECK_MSG(num_threads >= 1,
                    "WorkPool needs >= 1 thread, got " << num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (std::int64_t i = 0; i < num_threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  // Start only after every Worker slot exists: stealing scans all slots.
  for (std::size_t i = 0; i < workers_.size(); ++i)
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
}

WorkPool::~WorkPool() {
  std::vector<std::thread> blocking;
  {
    MutexLock lock(mu_);
    stop_ = true;
    ++work_epoch_;
    blocking.swap(blocking_threads_);
  }
  work_ready_.notify_all();
  blocking_ready_.notify_all();
  for (auto& w : workers_) w->thread.join();
  for (std::thread& t : blocking) t.join();
}

WorkPool& WorkPool::shared() {
  static WorkPool pool(static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

bool WorkPool::on_worker_thread() const { return tls_pool == this; }

void WorkPool::submit(std::function<void()> fn) {
  enqueue(std::move(fn));
}

void WorkPool::submit_blocking(std::function<void()> fn) {
  MutexLock lock(mu_);
  CHAINNN_CHECK_MSG(!stop_, "submit_blocking on a stopped WorkPool");
  blocking_queue_.push_back(std::move(fn));
  // Keep parked threads >= queued tasks: a queued blocking task must
  // never have to wait for a *running* one (which may be parked on a
  // user gate that only this task's progress would release).
  if (blocking_queue_.size() > idle_blocking_)
    blocking_threads_.emplace_back([this] { blocking_loop(); });
  blocking_ready_.notify_one();
}

void WorkPool::blocking_loop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!stop_ && blocking_queue_.empty()) {
      ++idle_blocking_;
      blocking_ready_.wait(mu_);
      --idle_blocking_;
    }
    if (stop_) return;
    std::function<void()> task = std::move(blocking_queue_.front());
    blocking_queue_.pop_front();
    lock.Unlock();
    task();
    task = nullptr;  // destroy captures before re-parking
    lock.Lock();
  }
}

void WorkPool::enqueue(std::function<void()> fn) {
  if (tls_pool == this) {
    Worker& self = *workers_[tls_index];
    MutexLock lock(self.mu);
    self.tasks.push_back(std::move(fn));
  } else {
    MutexLock lock(mu_);
    injected_.push_back(std::move(fn));
  }
  {
    MutexLock lock(mu_);
    ++work_epoch_;
  }
  work_ready_.notify_one();
}

bool WorkPool::try_pop(std::size_t index, std::function<void()>& out) {
  Worker& self = *workers_[index];
  {
    MutexLock lock(self.mu);
    if (!self.tasks.empty()) {
      out = std::move(self.tasks.back());
      self.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(index + k) % workers_.size()];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  {
    MutexLock lock(mu_);
    if (!injected_.empty()) {
      out = std::move(injected_.front());
      injected_.pop_front();
      return true;
    }
  }
  return false;
}

void WorkPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_index = index;
  for (;;) {
    std::int64_t epoch;
    {
      MutexLock lock(mu_);
      epoch = work_epoch_;
    }
    std::function<void()> task;
    if (try_pop(index, task)) {
      task();
      continue;
    }
    MutexLock lock(mu_);
    while (!stop_ && work_epoch_ == epoch) work_ready_.wait(mu_);
    if (stop_) return;
  }
}

void WorkPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;

  // Heap-allocated and shared with the claim tickets: a ticket may be
  // popped after the batch completed (stale), in which case it must
  // still be able to read the cursor safely and return without touching
  // anything the caller's frame owned.
  struct BatchState {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    Mutex mu;
    std::size_t completed CHAINNN_GUARDED_BY(mu) = 0;
    CondVar done;
  };
  auto state = std::make_shared<BatchState>();
  state->tasks = std::move(tasks);
  const std::size_t n = state->tasks.size();

  // Claims items off the shared cursor until none remain. Every claimed
  // item is executed by exactly one thread; the last finisher signals.
  auto claim = [](BatchState& s) {
    for (;;) {
      const std::size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.tasks.size()) return;
      s.tasks[i]();
      MutexLock lock(s.mu);
      if (++s.completed == s.tasks.size()) s.done.notify_all();
    }
  };

  // The caller itself runs one claimer, so only n-1 tickets (capped at
  // the worker count) are worth queueing.
  const std::size_t tickets = std::min(workers_.size(), n - 1);
  for (std::size_t t = 0; t < tickets; ++t)
    enqueue([state, claim] { claim(*state); });

  claim(*state);

  MutexLock lock(state->mu);
  while (state->completed != n) state->done.wait(state->mu);
}

}  // namespace chainnn::common
