// CSV emission for bench results so plots can be regenerated offline.
#pragma once

#include <string>
#include <vector>

namespace chainnn {

// Accumulates rows and writes RFC-4180-ish CSV (quotes cells containing
// commas, quotes or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::string to_string() const;

  // Writes to `path`; returns false (and logs) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chainnn
