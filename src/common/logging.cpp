#include "common/logging.hpp"

#include <atomic>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace chainnn::log {

namespace {

std::atomic<Level> g_level{Level::kInfo};

// Serializes emit(): a single `<<` of one char* is not atomic, so two
// threads logging at once could interleave mid-line. Level filtering
// stays lock-free (the atomic above); only the stream write serializes.
Mutex& emit_mutex() {
  static Mutex mu;
  return mu;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO";
    case Level::kWarn:  return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level); }

Level level() { return g_level.load(); }

void emit(Level lvl, const std::string& msg) {
  if (static_cast<int>(lvl) < static_cast<int>(g_level.load())) return;
  MutexLock lock(emit_mutex());
  std::cerr << "[chain-nn] " << level_name(lvl) << ": " << msg << '\n';
}

}  // namespace chainnn::log
