#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace chainnn {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHAINNN_CHECK(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> row) {
  CHAINNN_CHECK_MSG(row.size() == header_.size(),
                    "CSV row width " << row.size() << " != header width "
                                     << header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      os << escape(cells[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    log::error() << "cannot open " << path << " for writing";
    return false;
  }
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace chainnn
