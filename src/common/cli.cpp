#include "common/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace chainnn {

bool CliFlags::parse(int argc, const char* const* argv,
                     const std::map<std::string, std::string>& defaults,
                     std::string* error) {
  values_ = defaults;
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!strings::starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const auto it = defaults.find(name);
      const bool is_bool_flag =
          it != defaults.end() && (it->second == "true" || it->second == "false");
      if (is_bool_flag) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        if (error) *error = "flag --" + name + " is missing a value";
        return false;
      }
    }
    if (defaults.find(name) == defaults.end()) {
      if (error) *error = "unknown flag --" + name;
      return false;
    }
    values_[name] = value;
  }
  return true;
}

std::string CliFlags::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  CHAINNN_CHECK_MSG(it != values_.end(), "flag --" << name << " not declared");
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::strtoll(get_string(name).c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name) const {
  return std::strtod(get_string(name).c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string CliFlags::usage(
    const std::map<std::string, std::string>& defaults) {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, def] : defaults)
    os << "  --" << name << "=" << def << "\n";
  return os.str();
}

}  // namespace chainnn
