#include "common/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace chainnn {

bool CliFlags::parse(int argc, const char* const* argv,
                     const std::map<std::string, std::string>& defaults,
                     std::string* error) {
  values_ = defaults;
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!strings::starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const auto it = defaults.find(name);
      const bool is_bool_flag =
          it != defaults.end() && (it->second == "true" || it->second == "false");
      if (is_bool_flag) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        if (error) *error = "flag --" + name + " is missing a value";
        return false;
      }
    }
    if (defaults.find(name) == defaults.end()) {
      if (error) *error = "unknown flag --" + name;
      return false;
    }
    values_[name] = value;
  }
  return true;
}

std::string CliFlags::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  CHAINNN_CHECK_MSG(it != values_.end(), "flag --" << name << " not declared");
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::strtoll(get_string(name).c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name) const {
  return std::strtod(get_string(name).c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string CliFlags::usage(
    const std::map<std::string, std::string>& defaults) {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, def] : defaults)
    os << "  --" << name << "=" << def << "\n";
  return os.str();
}

const char* ExecModeSelection::name() const {
  if (compare) return "compare";
  if (none) return "none";
  return chain::exec_mode_name(mode);
}

bool parse_exec_mode_selection(const std::string& value, bool allow_compare,
                               bool allow_none, ExecModeSelection* out,
                               std::string* error) {
  ExecModeSelection sel;
  if (allow_compare && value == "compare") {
    sel.compare = true;
  } else if (allow_none && value == "none") {
    sel.none = true;
  } else if (!chain::parse_exec_mode(value, &sel.mode)) {
    if (error) {
      std::string valid = "analytical | cycle-accurate";
      if (allow_compare) valid += " | compare";
      if (allow_none) valid += " | none";
      *error = "unknown --exec-mode \"" + value + "\" (" + valid + ")";
    }
    return false;
  }
  *out = sel;
  return true;
}

bool parse_workers_flag(const CliFlags& flags, const std::string& flag_name,
                        std::int64_t* out, std::string* error) {
  const std::int64_t workers = flags.get_int(flag_name);
  if (workers < 1) {
    if (error)
      *error = "--" + flag_name + " must be a positive integer, got \"" +
               flags.get_string(flag_name) + "\"";
    return false;
  }
  *out = workers;
  return true;
}

bool consume_exec_mode_flag(int* argc, char** argv, bool allow_compare,
                            bool allow_none, ExecModeSelection* out,
                            std::string* error) {
  const std::string prefix = "--exec-mode";
  int kept = 1;
  bool ok = true;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (strings::starts_with(arg, prefix + "=")) {
      value = arg.substr(prefix.size() + 1);
    } else if (arg == prefix) {
      if (i + 1 >= *argc) {
        if (error) *error = "flag --exec-mode is missing a value";
        ok = false;
        continue;
      }
      value = argv[++i];
    } else {
      argv[kept++] = argv[i];
      continue;
    }
    if (!parse_exec_mode_selection(value, allow_compare, allow_none, out,
                                   error))
      ok = false;
  }
  *argc = kept;
  return ok;
}

}  // namespace chainnn
