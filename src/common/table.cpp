#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace chainnn {

void TextTable::set_header(std::vector<std::string> header) {
  CHAINNN_CHECK(!header.empty());
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  CHAINNN_CHECK_MSG(row.size() == header_.size(),
                    "row has " << row.size() << " cells, header has "
                               << header_.size());
  rows_.push_back(Row{std::move(row), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

std::vector<std::size_t> TextTable::column_widths() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const Row& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());
  return widths;
}

std::string TextTable::to_ascii() const {
  const auto widths = column_widths();
  auto hline = [&widths]() {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&widths](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c)
      s += " " + strings::pad_right(cells[c], widths[c]) + " |";
    return s + "\n";
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << hline() << line(header_) << hline();
  for (const Row& r : rows_) {
    if (r.separator_before) os << hline();
    os << line(r.cells);
  }
  os << hline();
  return os.str();
}

std::string TextTable::to_markdown() const {
  std::ostringstream os;
  if (!title_.empty()) os << "### " << title_ << "\n\n";
  os << "| " << strings::join(header_, " | ") << " |\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << "\n";
  for (const Row& r : rows_)
    os << "| " << strings::join(r.cells, " | ") << " |\n";
  return os.str();
}

}  // namespace chainnn
