#include "common/strings.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace chainnn::strings {

std::string fmt_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_si(double v, int decimals) {
  const double a = std::fabs(v);
  if (a >= 1e12) return fmt_fixed(v / 1e12, decimals) + " T";
  if (a >= 1e9) return fmt_fixed(v / 1e9, decimals) + " G";
  if (a >= 1e6) return fmt_fixed(v / 1e6, decimals) + " M";
  if (a >= 1e3) return fmt_fixed(v / 1e3, decimals) + " k";
  return fmt_fixed(v, decimals);
}

std::string fmt_bytes(double bytes, int decimals) {
  const double a = std::fabs(bytes);
  if (a >= 1024.0 * 1024.0 * 1024.0)
    return fmt_fixed(bytes / (1024.0 * 1024.0 * 1024.0), decimals) + "GB";
  if (a >= 1024.0 * 1024.0)
    return fmt_fixed(bytes / (1024.0 * 1024.0), decimals) + "MB";
  if (a >= 1024.0) return fmt_fixed(bytes / 1024.0, decimals) + "KB";
  return fmt_fixed(bytes, decimals) + "B";
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt_fixed(fraction * 100.0, decimals) + "%";
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace chainnn::strings
