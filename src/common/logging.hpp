// Minimal leveled logger for the Chain-NN tools.
//
// Simulation inner loops never log; logging is for harness-level progress
// (layer start/finish, pass summaries). Output goes to stderr so bench
// table output on stdout stays machine-parseable.
#pragma once

#include <sstream>
#include <string>

namespace chainnn::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_level(Level level);
[[nodiscard]] Level level();

// Emits `msg` at `lvl` with a "[chain-nn] LEVEL:" prefix.
void emit(Level lvl, const std::string& msg);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(Level lvl) : lvl_(lvl) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { emit(lvl_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};

}  // namespace detail

// Usage: chainnn::log::info() << "layer " << i << " done";
[[nodiscard]] inline detail::LineBuilder debug() {
  return detail::LineBuilder(Level::kDebug);
}
[[nodiscard]] inline detail::LineBuilder info() {
  return detail::LineBuilder(Level::kInfo);
}
[[nodiscard]] inline detail::LineBuilder warn() {
  return detail::LineBuilder(Level::kWarn);
}
[[nodiscard]] inline detail::LineBuilder error() {
  return detail::LineBuilder(Level::kError);
}

}  // namespace chainnn::log
