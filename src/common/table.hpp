// ASCII / markdown table rendering for bench output.
//
// Every bench binary reproduces one paper table or figure; TextTable gives
// them a common, aligned, diff-friendly presentation.
#pragma once

#include <string>
#include <vector>

namespace chainnn {

// A simple column-aligned text table. Cells are strings; callers format
// numbers with chainnn::strings helpers so each table controls precision.
class TextTable {
 public:
  // `title` is printed above the table; pass "" for none.
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  // Sets the header row. Column count is fixed by the header.
  void set_header(std::vector<std::string> header);

  // Appends a data row; must match the header's column count (checked).
  void add_row(std::vector<std::string> row);

  // Inserts a horizontal separator before the next added row.
  void add_separator();

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  // Renders with box-drawing ASCII ('|', '-', '+').
  [[nodiscard]] std::string to_ascii() const;

  // Renders GitHub-flavoured markdown.
  [[nodiscard]] std::string to_markdown() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  [[nodiscard]] std::vector<std::size_t> column_widths() const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace chainnn
