// Tiny command-line flag parser for the example binaries.
//
// Supports --name=value and --name value forms plus boolean switches.
// Unrecognized flags are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chainnn {

class CliFlags {
 public:
  // Parses argv; `spec` maps flag name (without dashes) to a default value.
  // Returns false and fills `error` if an unknown flag or malformed value
  // was seen.
  bool parse(int argc, const char* const* argv,
             const std::map<std::string, std::string>& defaults,
             std::string* error);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  // Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  // Renders "--name=default" lines for a usage message.
  [[nodiscard]] static std::string usage(
      const std::map<std::string, std::string>& defaults);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace chainnn
