// Tiny command-line flag parser for the example binaries, plus the
// shared --exec-mode / --workers handling every bench/example binary
// uses (one implementation instead of a copy per binary).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chain/config.hpp"

namespace chainnn {

class CliFlags {
 public:
  // Parses argv; `spec` maps flag name (without dashes) to a default value.
  // Returns false and fills `error` if an unknown flag or malformed value
  // was seen.
  bool parse(int argc, const char* const* argv,
             const std::map<std::string, std::string>& defaults,
             std::string* error);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  // Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  // Renders "--name=default" lines for a usage message.
  [[nodiscard]] static std::string usage(
      const std::map<std::string, std::string>& defaults);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Result of parsing an --exec-mode flag value. Besides the two engines,
// binaries may accept "compare" (run both engines and cross-check) and
// "none" (skip execution); which of those are legal is per-binary.
struct ExecModeSelection {
  chain::ExecMode mode = chain::ExecMode::kAnalytical;
  bool compare = false;
  bool none = false;

  // "analytical" / "cycle-accurate" / "compare" / "none".
  [[nodiscard]] const char* name() const;
};

// Parses `value` ("analytical", "cycle-accurate"/"cycle", plus
// "compare" / "none" when allowed). On failure returns false and fills
// `error` with a message listing the values this binary accepts.
[[nodiscard]] bool parse_exec_mode_selection(const std::string& value,
                                             bool allow_compare,
                                             bool allow_none,
                                             ExecModeSelection* out,
                                             std::string* error);

// Validates a positive worker count parsed from `flags[flag_name]`.
// Returns false and fills `error` for zero/negative/garbage values.
[[nodiscard]] bool parse_workers_flag(const CliFlags& flags,
                                      const std::string& flag_name,
                                      std::int64_t* out, std::string* error);

// For binaries whose remaining argv belongs to another parser
// (google-benchmark): removes "--exec-mode=X" / "--exec-mode X" from
// argv, updating *argc, and parses the value. Absent flag leaves `out`
// untouched and succeeds.
[[nodiscard]] bool consume_exec_mode_flag(int* argc, char** argv,
                                          bool allow_compare,
                                          bool allow_none,
                                          ExecModeSelection* out,
                                          std::string* error);

}  // namespace chainnn
