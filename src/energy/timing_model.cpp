#include "energy/timing_model.hpp"

#include "common/check.hpp"

namespace chainnn::energy {

double TimingModel::critical_path_s(int stages) const {
  CHAINNN_CHECK_MSG(stages >= 1, "pipeline needs at least one stage");
  return logic_depth_s / static_cast<double>(stages) + register_overhead_s;
}

double TimingModel::max_clock_hz(int stages) const {
  return 1.0 / critical_path_s(stages);
}

double TimingModel::peak_ops_per_s(int stages, std::int64_t num_pes) const {
  CHAINNN_CHECK(num_pes > 0);
  return 2.0 * static_cast<double>(num_pes) * max_clock_hz(stages);
}

double TimingModel::pe_energy_scale(int stages) const {
  CHAINNN_CHECK(stages >= 1);
  // 3-stage design is the 1.0 reference; each stage shifts the flop
  // share by ~5%.
  return 1.0 + 0.05 * static_cast<double>(stages - 3);
}

}  // namespace chainnn::energy
