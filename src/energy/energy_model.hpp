// Power/energy model of the Chain-NN chip.
//
// The paper measures power with Power Compiler on post-synthesis SAIF
// activity (§V.A); we substitute an activity-based analytic model:
//
//   P = P_chain + P_kmem + P_imem + P_omem
//   P_chain = e_pe_active * f * (active PEs) + e_pe_idle * f * (idle PEs)
//   P_mem   = leakage(size) + e_access * access_rate
//
// The per-event coefficients are CALIBRATED so that the paper's AlexNet
// steady-state activity mix reproduces Fig. 10's component powers
// (466.71 / 40.15 / 3.91 / 56.70 mW at 700 MHz, 576 active PEs) exactly;
// the model then extrapolates to other workloads, chain sizes and clock
// frequencies for the ablation benches. Calibration inputs and outputs
// are plain data so tests can pin them.
#pragma once

#include <cstdint>
#include <string>

#include "dataflow/plan.hpp"

namespace chainnn::energy {

// Average event rates, in events per cycle, for a workload.
struct ActivityRates {
  double active_pe_fraction = 1.0;   // of the whole chain
  double kmem_accesses_per_cycle = 0.0;
  double imem_accesses_per_cycle = 0.0;
  double omem_accesses_per_cycle = 0.0;
};

// Component power split (watts) — the Fig. 10 pie.
struct PowerBreakdown {
  double chain_w = 0.0;   // 1D chain arch. (PE datapath, channels, mux)
  double kmem_w = 0.0;
  double imem_w = 0.0;
  double omem_w = 0.0;

  [[nodiscard]] double total() const {
    return chain_w + kmem_w + imem_w + omem_w;
  }
  [[nodiscard]] double core_only() const { return chain_w + kmem_w; }
  [[nodiscard]] double memory_hierarchy() const { return imem_w + omem_w; }
};

struct EnergyCoefficients {
  // Chain datapath.
  double e_pe_active_j = 0.0;  // per active PE per cycle
  double e_pe_idle_j = 0.0;    // per idle (clock-gated) PE per cycle
  // Memories: leakage in watts, access energy in joules per 16-bit word.
  double kmem_leak_w = 0.0;
  double e_kmem_j = 0.0;
  double imem_leak_w = 0.0;
  double e_imem_j = 0.0;
  double omem_leak_w = 0.0;
  double e_omem_j = 0.0;
};

class EnergyModel {
 public:
  // Builds the model calibrated to the paper's Fig. 10 numbers (see
  // paper_calibration_rates() for the reference activity mix).
  static EnergyModel paper_calibrated();

  explicit EnergyModel(EnergyCoefficients coeffs) : c_(coeffs) {}

  [[nodiscard]] const EnergyCoefficients& coefficients() const { return c_; }

  // Power for a workload with the given activity at `clock_hz` on a chain
  // of `num_pes` PEs.
  [[nodiscard]] PowerBreakdown power(const ActivityRates& rates,
                                     double clock_hz,
                                     std::int64_t num_pes) const;

  // Energy for `cycles` at the given rates (J).
  [[nodiscard]] double energy_j(const ActivityRates& rates, double clock_hz,
                                std::int64_t num_pes,
                                std::uint64_t cycles) const;

 private:
  EnergyCoefficients c_;
};

// The activity mix used for calibration: AlexNet steady state on the
// 576-PE chain (96.9% average active PEs across conv1-5 weighted by
// time; kMemory ~1/45 reads per PE-cycle; iMemory ~2 words/cycle;
// oMemory ~2 words/cycle read+write). Derived from the analytic model;
// pinned by tests.
[[nodiscard]] ActivityRates paper_calibration_rates();

// The paper's Fig. 10 component powers (watts).
[[nodiscard]] PowerBreakdown paper_power_breakdown();

// Activity rates measured from an executed/planned layer: events per
// streaming cycle.
[[nodiscard]] ActivityRates rates_from_plan(
    const dataflow::ExecutionPlan& plan);

// GOPS/W for a throughput and power.
[[nodiscard]] double efficiency_gops_per_w(double ops_per_s, double watts);

}  // namespace chainnn::energy
