#include "energy/energy_model.hpp"

#include "common/check.hpp"
#include "dataflow/traffic.hpp"

namespace chainnn::energy {

ActivityRates paper_calibration_rates() {
  // AlexNet steady-state mix, derived from the paper's own Table IV
  // traffic totals divided by the batch runtime: batch 4 runs ~10.9 ms
  // (349.92 ms / 128 x 4) = 7.65M cycles at 700 MHz.
  //   iMemory:  26.2 MB / 2 B / 7.65M =  1.7 words/cycle (dual channels)
  //   kMemory: 116.8 MB / 2 B / 7.65M =  7.6 words/cycle (~1.3% per PE,
  //            consistent with §V.C's 1/KE activity factor per pattern)
  //   oMemory: 755.3 MB / 2 B / 7.65M = 49.3 words/cycle (one partial
  //            read+write per primitive per completion; oMemory is
  //            banked per primitive output port)
  ActivityRates r;
  // Layers 2-5 run 575-576 active PEs and dominate the time; conv1 runs
  // the strided schedule. Time-weighted average ≈ 0.985 of the chain.
  r.active_pe_fraction = 0.985;
  r.kmem_accesses_per_cycle = 7.6;
  r.imem_accesses_per_cycle = 1.71;
  r.omem_accesses_per_cycle = 49.3;
  return r;
}

PowerBreakdown paper_power_breakdown() {
  PowerBreakdown p;
  p.chain_w = 0.46671;  // Fig. 10: 1D chain arch.
  p.kmem_w = 0.04015;
  p.imem_w = 0.00391;
  p.omem_w = 0.05670;
  return p;
}

EnergyModel EnergyModel::paper_calibrated() {
  const ActivityRates r = paper_calibration_rates();
  const PowerBreakdown target = paper_power_breakdown();
  const double f = 700e6;
  const double n_pes = 576.0;

  EnergyCoefficients c;
  // Chain: split the chain power between active PEs and (lightly)
  // clock-gated idle ones; idle cost modelled at 10% of active.
  const double active = r.active_pe_fraction * n_pes;
  const double idle = n_pes - active;
  c.e_pe_active_j = target.chain_w / (f * (active + 0.1 * idle));
  c.e_pe_idle_j = 0.1 * c.e_pe_active_j;
  // Memories: 25% of each component is leakage (scales with capacity,
  // not activity), the rest dynamic, divided by the calibration rate.
  const double leak_share = 0.25;
  c.kmem_leak_w = leak_share * target.kmem_w;
  c.e_kmem_j =
      (1.0 - leak_share) * target.kmem_w / (f * r.kmem_accesses_per_cycle);
  c.imem_leak_w = leak_share * target.imem_w;
  c.e_imem_j =
      (1.0 - leak_share) * target.imem_w / (f * r.imem_accesses_per_cycle);
  c.omem_leak_w = leak_share * target.omem_w;
  c.e_omem_j =
      (1.0 - leak_share) * target.omem_w / (f * r.omem_accesses_per_cycle);
  return EnergyModel(c);
}

PowerBreakdown EnergyModel::power(const ActivityRates& rates,
                                  double clock_hz,
                                  std::int64_t num_pes) const {
  CHAINNN_CHECK(clock_hz > 0 && num_pes > 0);
  const double n = static_cast<double>(num_pes);
  const double active = rates.active_pe_fraction * n;
  const double idle = n - active;

  PowerBreakdown p;
  p.chain_w =
      clock_hz * (c_.e_pe_active_j * active + c_.e_pe_idle_j * idle);
  // Leakage scales with instantiated capacity, which tracks PE count for
  // kMemory (512B per PE) and is fixed for iMemory/oMemory.
  p.kmem_w = c_.kmem_leak_w * (n / 576.0) +
             clock_hz * c_.e_kmem_j * rates.kmem_accesses_per_cycle;
  p.imem_w = c_.imem_leak_w +
             clock_hz * c_.e_imem_j * rates.imem_accesses_per_cycle;
  p.omem_w = c_.omem_leak_w +
             clock_hz * c_.e_omem_j * rates.omem_accesses_per_cycle;
  return p;
}

double EnergyModel::energy_j(const ActivityRates& rates, double clock_hz,
                             std::int64_t num_pes,
                             std::uint64_t cycles) const {
  const PowerBreakdown p = power(rates, clock_hz, num_pes);
  return p.total() * static_cast<double>(cycles) / clock_hz;
}

ActivityRates rates_from_plan(const dataflow::ExecutionPlan& plan) {
  ActivityRates r;
  const auto cycles =
      static_cast<double>(plan.cycles_per_image());
  r.active_pe_fraction = static_cast<double>(plan.active_pes) /
                         static_cast<double>(plan.array.num_pes);

  const dataflow::LayerTrafficModel t = dataflow::model_traffic(plan, 1);
  const double wb = 2.0;
  r.imem_accesses_per_cycle =
      static_cast<double>(t.imem_reads + t.imem_writes) / wb / cycles;
  r.kmem_accesses_per_cycle =
      static_cast<double>(t.kmem_reads + t.kmem_writes) / wb / cycles;
  r.omem_accesses_per_cycle =
      static_cast<double>(t.omem_reads + t.omem_writes) / wb / cycles;
  return r;
}

double efficiency_gops_per_w(double ops_per_s, double watts) {
  return watts <= 0.0 ? 0.0 : ops_per_s / 1e9 / watts;
}

}  // namespace chainnn::energy
