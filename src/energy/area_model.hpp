// Gate-count / area model and technology scaling (§V.D, Table V).
#pragma once

#include <cstdint>

namespace chainnn::energy {

struct AreaModel {
  // Paper: Chain-NN costs 6.51k gates per PE (3751k total for 576 PEs
  // including control); Eyeriss is quoted at 11.02k gates per PE.
  double gates_per_pe = 6510.0;
  double control_overhead_gates = 1240.0;  // 3751k - 576*6.51k
  // On-chip SRAM in NAND2-equivalent gates per byte: a 6T cell per bit
  // is 48 transistors per byte, i.e. 12 four-transistor NAND2
  // equivalents. Only the sram overload below charges it — the paper's
  // Table V gate counts (pinned by tests) are logic-only and unchanged.
  double sram_gate_equiv_per_byte = 12.0;

  [[nodiscard]] double total_gates(std::int64_t num_pes) const {
    return gates_per_pe * static_cast<double>(num_pes) +
           control_overhead_gates;
  }
  // Logic plus on-chip SRAM (iMemory + oMemory + kMemory bytes), so a
  // design-space search comparing points that differ in memory sizing
  // sees the area cost of the extra capacity, not just the chain.
  [[nodiscard]] double total_gates(std::int64_t num_pes,
                                   std::uint64_t onchip_sram_bytes) const {
    return total_gates(num_pes) +
           sram_gate_equiv_per_byte *
               static_cast<double>(onchip_sram_bytes);
  }
};

// Linear feature-size scaling of energy efficiency between technology
// nodes — the scaling the paper applies to Eyeriss's 65 nm figure
// (245.6 GOPS/W -> "expected 570.1 GOPS/W at 28 nm"), i.e. a 65/28 factor.
[[nodiscard]] double scale_efficiency_to_node(double gops_per_w,
                                              double from_nm, double to_nm);

// Area efficiency ratio between two designs (gates per PE), the paper's
// "1.7 times area efficiency" claim.
[[nodiscard]] double area_efficiency_ratio(double gates_per_pe_ours,
                                           double gates_per_pe_theirs);

}  // namespace chainnn::energy
