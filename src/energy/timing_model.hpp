// Critical-path timing model: how the per-PE MAC pipeline depth sets the
// achievable clock frequency.
//
// §IV.B / §V.B: "each [PE] is pipelined into three stages so that the
// critical path delay is reduced to 1.428ns (700MHz)", and "other
// pipelining schemes may produce more efficient architectures" is left
// as future work. This model makes that trade explorable: the MAC
// datapath (16x16 multiply + 48-bit add + mux/select) has a fixed total
// logic depth; pipelining splits it into `stages` segments plus a
// register overhead per stage (setup + clk-to-q).
//
//   t_stage = t_logic / stages + t_reg
//   f_max   = 1 / t_stage
//
// Calibrated so stages = 3 gives exactly the paper's 1.428 ns critical
// path, with a register overhead typical of a 28 nm HPC flop (~120 ps).
// The pipeline ablation bench sweeps stages to show the throughput /
// latency / register-energy trade.
#pragma once

#include <cstdint>

namespace chainnn::energy {

struct TimingModel {
  // Total unpipelined MAC logic depth and per-stage register overhead.
  // Defaults calibrated to the paper: 3 stages -> 1.428 ns.
  double logic_depth_s = 3.924e-9;  // 3 * (1.428n - 0.12n)
  double register_overhead_s = 0.12e-9;

  // Critical path for a MAC pipelined into `stages` stages.
  [[nodiscard]] double critical_path_s(int stages) const;

  // Maximum clock frequency for `stages`.
  [[nodiscard]] double max_clock_hz(int stages) const;

  // Peak throughput of `num_pes` PEs at the stage-limited clock.
  [[nodiscard]] double peak_ops_per_s(int stages,
                                      std::int64_t num_pes) const;

  // Relative per-PE energy vs the 3-stage design: each extra pipeline
  // stage adds register energy (~5% of PE energy per stage, a typical
  // flop-power share for this datapath width).
  [[nodiscard]] double pe_energy_scale(int stages) const;
};

}  // namespace chainnn::energy
