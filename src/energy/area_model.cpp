#include "energy/area_model.hpp"

#include "common/check.hpp"

namespace chainnn::energy {

double scale_efficiency_to_node(double gops_per_w, double from_nm,
                                double to_nm) {
  CHAINNN_CHECK(from_nm > 0 && to_nm > 0);
  return gops_per_w * (from_nm / to_nm);
}

double area_efficiency_ratio(double gates_per_pe_ours,
                             double gates_per_pe_theirs) {
  CHAINNN_CHECK(gates_per_pe_ours > 0);
  return gates_per_pe_theirs / gates_per_pe_ours;
}

}  // namespace chainnn::energy
