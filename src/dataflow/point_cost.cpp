#include "dataflow/point_cost.hpp"

#include <exception>

#include "common/check.hpp"

namespace chainnn::dataflow {

LayerCostModel layer_cost_model(const ExecutionPlan& plan) {
  LayerCostModel m;
  m.kernel_load_cycles = plan.kernel_load_cycles_per_batch();
  m.stream_cycles_per_image = plan.stream_cycles_per_image();
  m.drain_cycles = plan.drain_cycles();
  m.rates = energy::rates_from_plan(plan);
  return m;
}

PointCost accumulate_point_cost(
    const std::vector<const LayerCostModel*>& layers, double clock_hz,
    std::int64_t num_pes, std::int64_t batch,
    const energy::EnergyModel& energy, double area_gates) {
  CHAINNN_CHECK_MSG(batch >= 1, "batch must be >= 1, got " << batch);
  CHAINNN_CHECK(clock_hz > 0 && num_pes > 0);
  PointCost cost;
  cost.area_gates = area_gates;
  for (const LayerCostModel* m : layers) {
    // The engines' accounting exactly: kernel loads once per batch,
    // streaming per image, the chain drain overlapping the streams and
    // paid once per run (chain::analytical_stats, which the
    // cycle-accurate simulator matches count for count).
    const std::int64_t cycles = m->kernel_load_cycles +
                                batch * m->stream_cycles_per_image +
                                m->drain_cycles;
    const double seconds = static_cast<double>(cycles) / clock_hz;
    const energy::PowerBreakdown power =
        energy.power(m->rates, clock_hz, num_pes);
    cost.total_cycles += cycles;
    cost.seconds += seconds;
    cost.energy_j += power.total() * seconds;
  }
  return cost;
}

std::uint64_t point_sram_bytes(const ArrayShape& array,
                               const mem::HierarchyConfig& memory) {
  return memory.imemory_bytes + memory.omemory_bytes +
         static_cast<std::uint64_t>(array.num_pes) *
             static_cast<std::uint64_t>(array.kmem_words_per_pe) *
             memory.word_bytes;
}

PointCost estimate_point_cost(const std::vector<nn::ConvLayerParams>& layers,
                              const ArrayShape& array,
                              const mem::HierarchyConfig& memory,
                              const PointCostOptions& options) {
  std::vector<LayerCostModel> models;
  models.reserve(layers.size());
  for (const nn::ConvLayerParams& layer : layers) {
    try {
      const ExecutionPlan plan = options.plan_source
                                     ? options.plan_source(layer, array, memory)
                                     : plan_layer(layer, array, memory);
      models.push_back(layer_cost_model(plan));
    } catch (const std::exception& e) {
      PointCost cost;
      cost.feasible = false;
      cost.infeasible_reason = layer.name + ": " + e.what();
      return cost;
    }
  }
  std::vector<const LayerCostModel*> refs;
  refs.reserve(models.size());
  for (const LayerCostModel& m : models) refs.push_back(&m);
  return accumulate_point_cost(refs, array.clock_hz, array.num_pes,
                               options.batch, options.energy,
                               options.area.total_gates(
                                   array.num_pes,
                                   point_sram_bytes(array, memory)));
}

}  // namespace chainnn::dataflow
