#include "dataflow/plan.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace chainnn::dataflow {

namespace {

constexpr std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

constexpr std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  return a / gcd64(a, b) * b;
}

// Strips of up to k_rows output rows, never crossing `row_block`
// boundaries so that every phase's strips tile the same oMemory-resident
// blocks.
std::vector<Strip> make_strips(std::int64_t out_rows, std::int64_t k_rows,
                               std::int64_t row_block) {
  std::vector<Strip> strips;
  for (std::int64_t b = 0; b < out_rows; b += row_block) {
    const std::int64_t b_end = std::min(b + row_block, out_rows);
    for (std::int64_t r = b; r < b_end; r += k_rows) {
      Strip s;
      s.first_out_row = r;
      s.out_rows = std::min(k_rows, b_end - r);
      strips.push_back(s);
    }
  }
  return strips;
}

}  // namespace

std::int64_t SubConvPlan::stream_slots_total() const {
  std::int64_t total = 0;
  for (const Strip& s : strips) total += slots_for(s);
  return total;
}

ExecutionPlan plan_layer(const nn::ConvLayerParams& layer,
                         const ArrayShape& array,
                         const mem::HierarchyConfig& memory) {
  layer.validate();
  ExecutionPlan plan;
  plan.layer = layer;
  plan.array = array;
  plan.memory = memory;

  const std::vector<SubConv> subs = decompose_strided(layer);
  const auto n_subs = static_cast<std::int64_t>(subs.size());

  // Primitive size: the largest sub-kernel (phase 0); smaller phases use
  // a prefix of each primitive's PEs with the remaining taps weighted
  // zero, so the kernel-residency structure stays uniform across phases.
  std::int64_t taps_max = 0;
  for (const SubConv& sc : subs) taps_max = std::max(taps_max, sc.taps());
  CHAINNN_CHECK_MSG(taps_max <= array.num_pes,
                    "kernel needs " << taps_max << " taps but chain has "
                                    << array.num_pes << " PEs");
  plan.taps = taps_max;
  plan.primitives = array.primitives_for(taps_max);

  const std::int64_t e_h = layer.out_height();
  const std::int64_t e_w = layer.out_width();

  // Row block: phases with different K_r must tile the same oMemory-
  // resident output rows, so blocks span lcm of the K_r values.
  std::int64_t block = 1;
  for (const SubConv& sc : subs) block = lcm64(block, sc.kernel_rows);
  plan.row_block = std::min(block, e_h);

  // oMemory must hold one row block of partials per resident kernel
  // (row_block rows x E_w 16-bit words); cap resident kernels to fit.
  const auto omem_words = static_cast<std::int64_t>(memory.omemory_bytes /
                                                    memory.word_bytes);
  const std::int64_t block_words = plan.row_block * e_w;
  CHAINNN_CHECK_MSG(block_words <= omem_words,
                    layer.name << ": one kernel's block partials ("
                               << block_words << " words) exceed oMemory");
  plan.primitives = std::min(plan.primitives, omem_words / block_words);
  CHAINNN_CHECK(plan.primitives >= 1);
  plan.active_pes = plan.primitives * taps_max;

  // Ofmap-channel tiles: all kernels resident in one pass must belong to
  // the same convolution group (they share the ifmap stream).
  const std::int64_t m_per_group = layer.out_channels_per_group();
  const std::int64_t groups_of_m =
      (m_per_group + plan.primitives - 1) / plan.primitives;
  plan.m_groups = groups_of_m * layer.groups;

  // Ifmap-channel tile bounded by kMemory: each PE stores one word per
  // (resident kernel, channel, phase).
  const std::int64_t max_c_tile =
      std::max<std::int64_t>(1, array.kmem_words_per_pe / n_subs);
  plan.c_tile = std::min(layer.channels_per_group(), max_c_tile);
  plan.c_tiles =
      (layer.channels_per_group() + plan.c_tile - 1) / plan.c_tile;

  plan.all_kernels_resident =
      plan.c_tiles == 1 &&
      plan.m_groups * plan.c_tile * n_subs <= array.kmem_words_per_pe;

  for (const SubConv& sc : subs) {
    SubConvPlan sp;
    sp.sub = sc;
    sp.out_rows = e_h;
    sp.out_cols = e_w;
    sp.strips = make_strips(e_h, sc.kernel_rows, plan.row_block);
    plan.subconvs.push_back(std::move(sp));
  }
  return plan;
}

std::int64_t ExecutionPlan::stream_slots_per_channel_pass() const {
  return stream_slots_per_channel_pass_on(array);
}

std::int64_t ExecutionPlan::stream_slots_per_channel_pass_on(
    const ArrayShape& a) const {
  std::int64_t slots = 0;
  for (const SubConvPlan& sp : subconvs)
    slots += a.dual_channel ? sp.stream_slots_total()
                            : sp.stream_slots_single_channel();
  return slots;
}

std::int64_t ExecutionPlan::cycles_per_image() const {
  // m_group -> c_tile -> sub -> strip -> c: one strip pattern per channel.
  return m_groups * layer.channels_per_group() *
             stream_slots_per_channel_pass() +
         drain_cycles();
}

std::int64_t ExecutionPlan::drain_cycles() const {
  return drain_cycles_on(array);
}

std::int64_t ExecutionPlan::drain_cycles_on(const ArrayShape& a) const {
  // Channel delay through the chain (2 registers per PE), the psum chain
  // of the last primitive, and the extra MAC pipeline stages.
  return 2 * (primitives - 1) * taps + taps + (a.pipeline_stages - 1);
}

std::int64_t ExecutionPlan::cycles_per_batch(std::int64_t batch) const {
  return kernel_load_cycles_per_batch() + batch * cycles_per_image();
}

double ExecutionPlan::seconds_per_batch(std::int64_t batch) const {
  return static_cast<double>(cycles_per_batch(batch)) / array.clock_hz;
}

std::int64_t ExecutionPlan::passes_per_image() const {
  std::int64_t strips = 0;
  for (const SubConvPlan& sp : subconvs)
    strips += static_cast<std::int64_t>(sp.strips.size());
  return m_groups * layer.channels_per_group() * strips;
}

std::int64_t ExecutionPlan::windows_per_image() const {
  std::int64_t per_mc = 0;
  for (const SubConvPlan& sp : subconvs)
    per_mc += sp.out_rows * sp.out_cols;
  return per_mc * layer.out_channels * layer.channels_per_group();
}

double ExecutionPlan::utilization_per_image() const {
  const double macs = static_cast<double>(layer.macs_per_image());
  const double cap = static_cast<double>(array.num_pes) *
                     static_cast<double>(cycles_per_image());
  return cap == 0.0 ? 0.0 : macs / cap;
}

std::int64_t ExecutionPlan::paper_model_cycles_per_image() const {
  // The idealized model the paper's Fig. 9 follows: MACs spread over the
  // PEs active for the square-K grouping, degraded by the stride (strided
  // layers sustain one window per S cycles) or by K for single-channel.
  const std::int64_t k2 = layer.kernel * layer.kernel;
  const std::int64_t active = array.active_pes_for(k2);
  CHAINNN_CHECK_MSG(active > 0, "kernel " << layer.kernel
                                          << " does not fit the chain");
  const std::int64_t penalty =
      array.dual_channel ? layer.stride : layer.stride * layer.kernel;
  return (layer.macs_per_image() * penalty + active - 1) / active;
}

double ExecutionPlan::paper_model_seconds_per_batch(
    std::int64_t batch) const {
  const std::int64_t cycles =
      kernel_load_cycles_per_batch() + batch * paper_model_cycles_per_image();
  return static_cast<double>(cycles) / array.clock_hz;
}

std::string ExecutionPlan::to_string() const {
  std::ostringstream os;
  os << layer.name << ": " << primitives << " primitives x " << taps
     << " taps (" << active_pes << " active PEs), " << m_groups
     << " m-groups, c-tile " << c_tile << " x" << c_tiles << ", "
     << subconvs.size() << " phase(s)"
     << (all_kernels_resident ? ", kernels fully resident" : "");
  return os.str();
}

PlanKey PlanKey::from(const nn::ConvLayerParams& layer,
                      const ArrayShape& array,
                      const mem::HierarchyConfig& memory) {
  PlanKey k;
  k.in_channels = layer.in_channels;
  k.out_channels = layer.out_channels;
  k.in_height = layer.in_height;
  k.in_width = layer.in_width;
  k.kernel = layer.kernel;
  k.stride = layer.stride;
  k.groups = layer.groups;
  k.pad_rows = layer.pad_rows();
  k.pad_cols = layer.pad_cols();
  k.num_pes = array.num_pes;
  k.kmem_words_per_pe = array.kmem_words_per_pe;
  k.omemory_bytes = memory.omemory_bytes;
  k.word_bytes = memory.word_bytes;
  return k;
}

std::size_t PlanKey::hash() const {
  // FNV-1a over the fields; collisions only cost an equality probe.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(in_channels));
  mix(static_cast<std::uint64_t>(out_channels));
  mix(static_cast<std::uint64_t>(in_height));
  mix(static_cast<std::uint64_t>(in_width));
  mix(static_cast<std::uint64_t>(kernel));
  mix(static_cast<std::uint64_t>(stride));
  mix(static_cast<std::uint64_t>(groups));
  mix(static_cast<std::uint64_t>(pad_rows));
  mix(static_cast<std::uint64_t>(pad_cols));
  mix(static_cast<std::uint64_t>(num_pes));
  mix(static_cast<std::uint64_t>(kmem_words_per_pe));
  mix(omemory_bytes);
  mix(word_bytes);
  return static_cast<std::size_t>(h);
}

bool RequestCycleEstimate::feasible_within(double clock_hz,
                                           double backlog_seconds,
                                           double deadline_seconds) const {
  CHAINNN_CHECK_MSG(clock_hz > 0.0, "clock must be positive");
  return backlog_seconds + seconds(clock_hz) <= deadline_seconds;
}

RequestCycleEstimate estimate_request_cycles(const ExecutionPlan& plan,
                                             std::int64_t batch) {
  return estimate_request_cycles(plan, plan.array, batch);
}

RequestCycleEstimate estimate_request_cycles(const ExecutionPlan& plan,
                                             const ArrayShape& array,
                                             std::int64_t batch) {
  CHAINNN_CHECK_MSG(batch >= 1, "batch must be >= 1, got " << batch);
  RequestCycleEstimate est;
  est.kernel_load_cycles = plan.kernel_load_cycles_per_batch();
  est.stream_cycles = batch * plan.m_groups *
                      plan.layer.channels_per_group() *
                      plan.stream_slots_per_channel_pass_on(array);
  est.drain_cycles = batch * plan.drain_cycles_on(array);
  return est;
}

UtilizationRow utilization_row(const ArrayShape& array, std::int64_t kernel) {
  UtilizationRow row;
  row.kernel = kernel;
  row.pes_per_primitive = kernel * kernel;
  row.active_primitives = array.primitives_for(row.pes_per_primitive);
  row.active_pes = row.active_primitives * row.pes_per_primitive;
  row.efficiency = array.pe_utilization_for(row.pes_per_primitive);
  return row;
}

}  // namespace chainnn::dataflow
