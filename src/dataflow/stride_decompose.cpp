#include "dataflow/stride_decompose.hpp"

#include "common/check.hpp"

namespace chainnn::dataflow {

std::vector<SubConv> decompose_strided(const nn::ConvLayerParams& p) {
  p.validate();
  const std::int64_t s = p.stride;
  const std::int64_t k = p.kernel;
  const std::int64_t h_pad = p.in_height + 2 * p.pad_rows();
  const std::int64_t w_pad = p.in_width + 2 * p.pad_cols();

  std::vector<SubConv> subs;
  for (std::int64_t a = 0; a < s && a < k; ++a) {
    for (std::int64_t b = 0; b < s && b < k; ++b) {
      SubConv sc;
      sc.phase_row = a;
      sc.phase_col = b;
      sc.kernel_rows = (k - a + s - 1) / s;
      sc.kernel_cols = (k - b + s - 1) / s;
      // Decimated grid: padded rows {a, a+S, a+2S, ...}.
      sc.in_rows = a < h_pad ? (h_pad - a + s - 1) / s : 0;
      sc.in_cols = b < w_pad ? (w_pad - b + s - 1) / s : 0;
      subs.push_back(sc);
    }
  }

  // Invariant: tap counts partition the kernel exactly.
  std::int64_t taps = 0;
  for (const SubConv& sc : subs) taps += sc.taps();
  CHAINNN_CHECK_MSG(taps == k * k, "phase decomposition lost taps: " << taps
                                                                     << " vs "
                                                                     << k * k);
  return subs;
}

TapMapping map_tap(const nn::ConvLayerParams& p, std::int64_t ky,
                   std::int64_t kx) {
  CHAINNN_CHECK(ky >= 0 && ky < p.kernel && kx >= 0 && kx < p.kernel);
  const std::int64_t s = p.stride;
  TapMapping m;
  const std::int64_t a = ky % s;
  const std::int64_t b = kx % s;
  const std::int64_t phases_per_row = std::min(s, p.kernel);
  m.sub_index = a * phases_per_row + b;
  m.sub_ky = ky / s;
  m.sub_kx = kx / s;
  return m;
}

}  // namespace chainnn::dataflow
