#include "dataflow/traffic.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace chainnn::dataflow {

namespace {

// Real columns of the decimated strip (independent of rows).
std::int64_t strip_real_cols(const nn::ConvLayerParams& layer,
                             const SubConv& sub) {
  std::int64_t real_cols = 0;
  for (std::int64_t c = 0; c < sub.in_cols; ++c) {
    const std::int64_t pc = layer.stride * c + sub.phase_col;
    if (pc >= layer.pad_cols() && pc < layer.pad_cols() + layer.in_width)
      ++real_cols;
  }
  return real_cols;
}

// True if decimated row r maps to a real (non-padding) image row.
bool row_is_real(const nn::ConvLayerParams& layer, const SubConv& sub,
                 std::int64_t r) {
  if (r < 0 || r >= sub.in_rows) return false;
  const std::int64_t pr = layer.stride * r + sub.phase_row;
  return pr >= layer.pad_rows() && pr < layer.pad_rows() + layer.in_height;
}

}  // namespace

// Pixels streamed by the single-channel (Fig. 5(a)) pattern: each output
// row re-streams its K_r-row band.
std::int64_t strip_real_pixels_single_channel(
    const nn::ConvLayerParams& layer, const SubConv& sub,
    const Strip& strip) {
  const std::int64_t cols = strip_real_cols(layer, sub);
  std::int64_t rows = 0;
  for (std::int64_t r0 = 0; r0 < strip.out_rows; ++r0)
    for (std::int64_t r = strip.first_out_row + r0;
         r < strip.first_out_row + r0 + sub.kernel_rows; ++r)
      if (row_is_real(layer, sub, r)) ++rows;
  return rows * cols;
}

// Strip pixels counting materialized padding as streamed words (the
// accounting the paper's Table IV iMemory column appears to use: its
// conv3 number matches padded streaming, not real-pixel streaming).
std::int64_t strip_padded_pixels(const nn::ConvLayerParams& layer,
                                 const SubConv& sub, const Strip& strip) {
  (void)layer;
  std::int64_t rows = 0;
  const std::int64_t last_row =
      strip.first_out_row + strip.out_rows + sub.kernel_rows - 2;
  for (std::int64_t r = strip.first_out_row; r <= last_row; ++r)
    if (r >= 0 && r < sub.in_rows) ++rows;
  return rows * sub.in_cols;
}

std::int64_t strip_real_pixels(const nn::ConvLayerParams& layer,
                               const SubConv& sub, const Strip& strip) {
  // Strip streams decimated rows [first_out_row, first_out_row +
  // out_rows + K_r - 2], clipped to the decimated grid; of those, count
  // positions that land on real (non-padding) image pixels.
  const std::int64_t s = layer.stride;
  std::int64_t real_rows = 0;
  const std::int64_t last_row =
      strip.first_out_row + strip.out_rows + sub.kernel_rows - 2;
  (void)s;
  for (std::int64_t r = strip.first_out_row; r <= last_row; ++r)
    if (row_is_real(layer, sub, r)) ++real_rows;
  return real_rows * strip_real_cols(layer, sub);
}

double ifmap_reuse_factor(const ExecutionPlan& plan) {
  const std::int64_t k = plan.layer.kernel;
  return static_cast<double>(2 * k - 1) / static_cast<double>(k);
}

double kmem_activity_factor(const ExecutionPlan& plan) {
  // One weight read per in-use PE per strip pattern; averaged over the
  // pattern slots. For a stride-1 layer this is 1/(K*(W_pad-1)+2K-1),
  // i.e. the paper's ~1/KE (§V.C).
  double reads = 0.0;
  double cycles = 0.0;
  for (const SubConvPlan& sp : plan.subconvs) {
    for (const Strip& strip : sp.strips) {
      reads += static_cast<double>(sp.sub.taps()) /
               static_cast<double>(plan.taps);
      cycles += static_cast<double>(sp.slots_for(strip));
    }
  }
  return cycles == 0.0 ? 0.0 : reads / cycles;
}

LayerTrafficModel model_traffic(const ExecutionPlan& plan,
                                std::int64_t batch,
                                const TrafficModelOptions& opt) {
  CHAINNN_CHECK(batch > 0);
  const nn::ConvLayerParams& layer = plan.layer;
  const std::uint64_t wb = opt.word_bytes;
  LayerTrafficModel t;

  // --- streamed pixels per channel pass -----------------------------------
  std::uint64_t streamed_per_channel = 0;  // real pixels, one m-group
  std::uint64_t max_strip_bytes = 0;
  for (const SubConvPlan& sp : plan.subconvs) {
    for (const Strip& strip : sp.strips) {
      std::int64_t px = 0;
      if (opt.count_padding_as_stream)
        px = strip_padded_pixels(layer, sp.sub, strip);
      else if (plan.array.dual_channel)
        px = strip_real_pixels(layer, sp.sub, strip);
      else
        px = strip_real_pixels_single_channel(layer, sp.sub, strip);
      streamed_per_channel += static_cast<std::uint64_t>(px);
      max_strip_bytes = std::max(
          max_strip_bytes,
          static_cast<std::uint64_t>(
              strip_real_pixels(layer, sp.sub, strip)) *
              wb);
    }
  }

  const auto cg = static_cast<std::uint64_t>(layer.channels_per_group());
  const auto m_groups = static_cast<std::uint64_t>(plan.m_groups);
  const auto nb = static_cast<std::uint64_t>(batch);

  // --- iMemory --------------------------------------------------------------
  // Reads into the chain: every streamed pixel, for every channel of the
  // group, re-streamed for every m-group.
  t.imem_reads = streamed_per_channel * cg * m_groups * nb * wb;

  // --- DRAM ifmap + iMemory writes -------------------------------------------
  // With all kernels resident in kMemory and a strip fitting half of
  // iMemory (double buffering), strips are fetched once and re-streamed
  // across m-groups; otherwise each m-group refetches from DRAM.
  const bool strip_fits = max_strip_bytes * 2 <= opt.imemory_bytes;
  const std::uint64_t fetch_factor =
      (plan.all_kernels_resident && strip_fits) ? 1 : m_groups;
  std::uint64_t streamed_once_per_channel = 0;  // without 1/K re-reps
  for (const SubConvPlan& sp : plan.subconvs)
    for (const Strip& strip : sp.strips)
      streamed_once_per_channel += static_cast<std::uint64_t>(
          strip_real_pixels(layer, sp.sub, strip));
  t.dram_ifmap = streamed_once_per_channel * cg * fetch_factor * nb * wb;
  t.imem_writes = t.dram_ifmap;  // everything fetched lands in iMemory

  // --- kMemory ----------------------------------------------------------------
  // Writes: kernels loaded once per batch (1 word/cycle, §V.B).
  t.kmem_writes = static_cast<std::uint64_t>(layer.weight_count()) * wb;
  t.dram_kernel = t.kmem_writes;
  // Reads: one weight per in-use PE per (strip, channel, m-group) pass.
  std::uint64_t pe_strip_loads = 0;
  for (const SubConvPlan& sp : plan.subconvs)
    pe_strip_loads += static_cast<std::uint64_t>(sp.strips.size()) *
                      static_cast<std::uint64_t>(plan.primitives) *
                      static_cast<std::uint64_t>(sp.sub.taps());
  t.kmem_reads = pe_strip_loads * cg * m_groups * nb * wb;

  // --- oMemory -----------------------------------------------------------------
  // One 16-bit partial write per window completion; a read too except on
  // the first accumulation pass of each output.
  const auto completions =
      static_cast<std::uint64_t>(plan.windows_per_image()) * nb;
  const auto outputs =
      static_cast<std::uint64_t>(layer.ofmap_pixels_per_image()) * nb;
  t.omem_writes = completions * wb;
  t.omem_reads = (completions - outputs) * wb;

  // --- DRAM ofmap ----------------------------------------------------------------
  t.dram_ofmap = outputs * wb;

  // --- DRAM psum spill (c_tiles > 1) ----------------------------------------------
  // Between channel residencies every output's partial is written out and
  // read back once.
  if (plan.c_tiles > 1)
    t.dram_psum =
        outputs * static_cast<std::uint64_t>(plan.c_tiles - 1) * 2 * wb;

  return t;
}

}  // namespace chainnn::dataflow
