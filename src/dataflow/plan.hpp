// Execution planning: how one convolutional layer maps onto the 1D chain.
//
// The plan captures the Fig. 7 loop nest:
//
//   for m_group (OuterTile over ofmap channels; the resident kernels —
//                one per primitive — live in kMemory)
//     for c_tile (ifmap-channel slice whose weights fit kMemory)
//       load kernels (1 word/cycle; totals once per batch, §V.B)
//       for n in batch (InnerTile)
//         for sub_conv (stride phase decomposition; 1 entry if stride==1)
//           for strip (group of up to K_r ofmap rows)
//             for c in c_tile
//               stream the strip column-major through the dual channels;
//               every resident primitive computes one kernel's windows,
//               partial sums accumulate in oMemory.
//
// Two timing views:
//   * cycles_*() — the schedule the cycle-accurate simulator executes;
//     tests assert the simulator's measured counts equal these closed
//     forms exactly.
//   * paper_model_cycles_*() — the idealized model the paper's Fig. 9
//     numbers follow (MACs / active-PEs, x stride for strided layers,
//     x K for single-channel PEs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/array_shape.hpp"
#include "dataflow/stride_decompose.hpp"
#include "mem/hierarchy.hpp"
#include "nn/conv_params.hpp"

namespace chainnn::dataflow {

// One strip of a sub-convolution: a group of up to K_r ofmap rows
// produced by streaming (out_rows + K_r - 1) ifmap rows column-major.
struct Strip {
  std::int64_t first_out_row = 0;  // first output row of the strip
  std::int64_t out_rows = 0;       // valid output rows (<= K_r)

  friend bool operator==(const Strip&, const Strip&) = default;
};

// Plan for one sub-convolution on the chain.
struct SubConvPlan {
  SubConv sub;
  std::int64_t out_rows = 0;  // E_h of the layer (every phase covers it)
  std::int64_t out_cols = 0;  // E_w
  std::vector<Strip> strips;

  // Rows streamed for `strip`: out_rows + K_r - 1.
  [[nodiscard]] std::int64_t strip_rows(const Strip& strip) const {
    return strip.out_rows + sub.kernel_rows - 1;
  }
  // Stream slots for `strip` under the dual-channel pattern:
  // K_r*(in_cols-1) + strip_rows.
  [[nodiscard]] std::int64_t slots_for(const Strip& strip) const {
    return sub.kernel_rows * (sub.in_cols - 1) + strip_rows(strip);
  }
  [[nodiscard]] std::int64_t stream_slots_total() const;
  // Single-channel variant (Fig. 5(a)): one output row per K_r*in_cols
  // slots.
  [[nodiscard]] std::int64_t stream_slots_single_channel() const {
    return out_rows * sub.kernel_rows * sub.in_cols;
  }
};

struct ExecutionPlan {
  nn::ConvLayerParams layer;
  ArrayShape array;
  mem::HierarchyConfig memory;

  std::int64_t taps = 0;        // physical PEs per primitive (max phase)
  std::int64_t primitives = 0;  // resident kernels per pass (may be
                                // capped by oMemory partial capacity)
  std::int64_t active_pes = 0;
  std::int64_t m_groups = 0;    // ofmap-channel tiles (grouped convs
                                // multiplied out)
  std::int64_t c_tile = 0;      // ifmap channels per kMemory residency
  std::int64_t c_tiles = 0;     // ceil(C/groups / c_tile)
  // Output rows whose partials co-reside in oMemory. Strided layers run
  // several phases with different K_r over the same outputs, so strips
  // are aligned into blocks of lcm(K_r) rows; the partials of a block
  // stay in oMemory until every (phase, channel) pass has accumulated.
  std::int64_t row_block = 0;
  std::vector<SubConvPlan> subconvs;

  // True when every m-group's and c-tile's kernels fit kMemory at once,
  // letting ifmap strips be fetched from DRAM once and re-streamed from
  // iMemory across m-groups (the DRAM policy of traffic.hpp).
  bool all_kernels_resident = false;

  // --- kernel loading ------------------------------------------------------
  [[nodiscard]] std::int64_t kernel_words_total() const {
    return layer.weight_count();
  }
  // Once per batch at 1 word/cycle (§V.B, Fig. 9).
  [[nodiscard]] std::int64_t kernel_load_cycles_per_batch() const {
    return kernel_words_total();
  }

  // --- streaming cycles (our schedule) --------------------------------------
  [[nodiscard]] std::int64_t stream_slots_per_channel_pass() const;
  [[nodiscard]] std::int64_t cycles_per_image() const;
  [[nodiscard]] std::int64_t drain_cycles() const;
  // The two closed forms above evaluated against `a` instead of
  // this->array: dual_channel and pipeline_stages are the only array
  // fields they read, and both are outside PlanKey, so a plan shared
  // through serve::PlanCache must be costed with the caller's array.
  [[nodiscard]] std::int64_t stream_slots_per_channel_pass_on(
      const ArrayShape& a) const;
  [[nodiscard]] std::int64_t drain_cycles_on(const ArrayShape& a) const;
  [[nodiscard]] std::int64_t cycles_per_batch(std::int64_t batch) const;
  [[nodiscard]] double seconds_per_batch(std::int64_t batch) const;

  // Stream slots the controller spends on one image (cycles_per_image
  // without the once-per-run drain). The analytical engine replays this
  // and the two counts below in place of the measured RunStats.
  [[nodiscard]] std::int64_t stream_cycles_per_image() const {
    return cycles_per_image() - drain_cycles();
  }

  // Strip passes the controller issues per image (one per
  // (m_group, channel, phase, strip)).
  [[nodiscard]] std::int64_t passes_per_image() const;

  // Window completions per image (one per (m, c, phase, output site)).
  [[nodiscard]] std::int64_t windows_per_image() const;

  // MAC utilization over the whole chain: MACs / (num_pes x cycles).
  [[nodiscard]] double utilization_per_image() const;

  // --- the paper's idealized timing model -----------------------------------
  [[nodiscard]] std::int64_t paper_model_cycles_per_image() const;
  [[nodiscard]] double paper_model_seconds_per_batch(
      std::int64_t batch) const;

  [[nodiscard]] std::string to_string() const;
};

// Builds the plan; throws if the layer cannot be mapped (kernel taps
// exceeding the chain, or one kernel's partials not fitting oMemory).
[[nodiscard]] ExecutionPlan plan_layer(
    const nn::ConvLayerParams& layer, const ArrayShape& array,
    const mem::HierarchyConfig& memory = {});

// Identity of a plan's *derived structure* (taps, primitives, tiling,
// strips). plan_layer's outputs depend only on these fields: layer
// geometry (batch and name excluded — they are carried verbatim but
// shape nothing), the chain length and per-PE kernel storage, and the
// oMemory capacity in words. Everything else (clock frequency, pipeline
// depth, dual_channel, iMemory/kMemory sizes) is stored in the plan but
// only consulted at query time, so plans can be shared across configs
// that differ in those fields — serve::PlanCache keys on this struct and
// re-stamps layer/array/memory verbatim on every fetch.
struct PlanKey {
  // Layer geometry (effective per-axis padding, not the raw pad fields).
  std::int64_t in_channels = 0, out_channels = 0;
  std::int64_t in_height = 0, in_width = 0;
  std::int64_t kernel = 0, stride = 0, groups = 0;
  std::int64_t pad_rows = 0, pad_cols = 0;
  // Array structure.
  std::int64_t num_pes = 0, kmem_words_per_pe = 0;
  // Memory capacity that caps resident kernels.
  std::uint64_t omemory_bytes = 0, word_bytes = 0;

  [[nodiscard]] static PlanKey from(const nn::ConvLayerParams& layer,
                                    const ArrayShape& array,
                                    const mem::HierarchyConfig& memory);
  [[nodiscard]] std::size_t hash() const;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const { return k.hash(); }
};

// Closed-form cost of one serving request — `batch` images of the plan's
// layer on the plan's array — broken into the components a router wants
// to reason about. total() equals cycles_per_batch(batch) exactly, so a
// modelled completion time is as trustworthy as the analytical engine
// itself (which the test suite pins against the cycle-accurate
// simulator). Routing layers fetch the plan by PlanKey through a shared
// serve::PlanCache and call this, so sizing a request costs a hash
// lookup, not a planning pass.
struct RequestCycleEstimate {
  std::int64_t kernel_load_cycles = 0;  // once per request (§V.B)
  std::int64_t stream_cycles = 0;       // batch x per-image streaming
  std::int64_t drain_cycles = 0;        // batch x per-image chain drain

  [[nodiscard]] std::int64_t total() const {
    return kernel_load_cycles + stream_cycles + drain_cycles;
  }
  [[nodiscard]] double seconds(double clock_hz) const {
    return static_cast<double>(total()) / clock_hz;
  }
  // Deadline-feasibility closed form (admission control): can this
  // request, queued behind `backlog_seconds` of modelled work on a chip
  // clocked at `clock_hz`, finish within `deadline_seconds` of now? The
  // estimate is exact for the chain time (the analytical engine executes
  // these very closed forms), so an infeasible verdict is a modelling
  // fact, not a heuristic — only host-side overheads (queue pickup,
  // worker scheduling) sit outside it.
  [[nodiscard]] bool feasible_within(double clock_hz, double backlog_seconds,
                                     double deadline_seconds) const;
};
[[nodiscard]] RequestCycleEstimate estimate_request_cycles(
    const ExecutionPlan& plan, std::int64_t batch);
// Same closed forms, but dual_channel / pipeline_stages read from
// `array` — for costing a plan fetched by shared pointer out of
// serve::PlanCache, whose stored array may differ from the caller's in
// exactly those (non-key) fields.
[[nodiscard]] RequestCycleEstimate estimate_request_cycles(
    const ExecutionPlan& plan, const ArrayShape& array, std::int64_t batch);

// Table II helper: active primitive/PE counts for a square kernel K
// (pure chain regrouping — no memory constraints).
struct UtilizationRow {
  std::int64_t kernel = 0;
  std::int64_t pes_per_primitive = 0;
  std::int64_t active_primitives = 0;
  std::int64_t active_pes = 0;
  double efficiency = 0.0;
};
[[nodiscard]] UtilizationRow utilization_row(const ArrayShape& array,
                                             std::int64_t kernel);

}  // namespace chainnn::dataflow
