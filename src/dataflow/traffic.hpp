// Analytic memory-traffic model — regenerates the paper's Table IV
// ("memory communication breakdown") from an execution plan.
//
// Counting rules (derived in DESIGN.md §4-5 from the paper's §V.C and the
// Table IV data itself):
//   iMemory reads  — every real (non-padding) ifmap pixel streamed into
//                    the chain: one read per pixel per strip pass, i.e.
//                    about (2K-1)/K reads per pixel per m-group.
//   kMemory reads  — one weight read per active PE per (strip, channel)
//                    pass (the weight then stays in the MAC operand
//                    register for the whole pattern — activity factor
//                    ~1/KE, §V.C); writes = kernel loads, once per batch.
//   oMemory        — one partial-sum read + write per window completion
//                    (16-bit words; first accumulation pass skips the
//                    read).
//   DRAM           — ifmaps fetched once per (strip, channel) when a
//                    channel strip fits in iMemory (kernels for several
//                    m-groups are then cycled from kMemory), otherwise
//                    refetched per m-group; kernels once per batch;
//                    ofmaps written once.
#pragma once

#include <cstdint>

#include "dataflow/plan.hpp"
#include "mem/hierarchy.hpp"

namespace chainnn::dataflow {

struct TrafficModelOptions {
  std::uint64_t word_bytes = 2;         // 16-bit operands
  std::uint64_t imemory_bytes = 32 * 1024;
  bool count_padding_as_stream = false;  // pad pixels are generated, not read
};

struct LayerTrafficModel {
  // Per-batch byte counts, split by operand where meaningful.
  std::uint64_t dram_ifmap = 0;
  std::uint64_t dram_kernel = 0;
  std::uint64_t dram_ofmap = 0;
  // Partial-sum spill when the channel dimension needs several kMemory
  // residencies (c_tiles > 1, e.g. VGG's C = 512 layers).
  std::uint64_t dram_psum = 0;
  std::uint64_t imem_reads = 0;
  std::uint64_t imem_writes = 0;
  std::uint64_t kmem_reads = 0;
  std::uint64_t kmem_writes = 0;
  std::uint64_t omem_reads = 0;
  std::uint64_t omem_writes = 0;

  [[nodiscard]] std::uint64_t dram_total() const {
    return dram_ifmap + dram_kernel + dram_ofmap + dram_psum;
  }
  [[nodiscard]] std::uint64_t imem_total() const {
    return imem_reads + imem_writes;
  }
  [[nodiscard]] std::uint64_t kmem_total() const {
    return kmem_reads + kmem_writes;
  }
  [[nodiscard]] std::uint64_t omem_total() const {
    return omem_reads + omem_writes;
  }
};

// Models traffic for `batch` images of the planned layer.
[[nodiscard]] LayerTrafficModel model_traffic(const ExecutionPlan& plan,
                                              std::int64_t batch,
                                              const TrafficModelOptions& opt =
                                                  {});

// Real (non-padding) pixels streamed for one strip of one channel of one
// sub-convolution — exposed for tests and for the cycle simulator, which
// must charge iMemory identically.
[[nodiscard]] std::int64_t strip_real_pixels(const nn::ConvLayerParams& layer,
                                             const SubConv& sub,
                                             const Strip& strip);

// Same, for the single-channel (Fig. 5(a)) pattern, which re-streams each
// output row's K_r-row band.
[[nodiscard]] std::int64_t strip_real_pixels_single_channel(
    const nn::ConvLayerParams& layer, const SubConv& sub,
    const Strip& strip);

// Strip pixels counting materialized zero-padding as streamed words (the
// accounting Table IV's iMemory column uses — see model_traffic's
// count_padding_as_stream option).
[[nodiscard]] std::int64_t strip_padded_pixels(
    const nn::ConvLayerParams& layer, const SubConv& sub,
    const Strip& strip);

// Average ifmap reads-per-pixel factor ((2K-1)/K in the paper's §V.C).
[[nodiscard]] double ifmap_reuse_factor(const ExecutionPlan& plan);

// kMemory activity factor during streaming: reads per cycle (the paper
// quotes 1/KE ≈ 2.22% for AlexNet conv3).
[[nodiscard]] double kmem_activity_factor(const ExecutionPlan& plan);

}  // namespace chainnn::dataflow
