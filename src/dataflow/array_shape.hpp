// Physical parameters of a Chain-NN instance that the dataflow compiler
// plans against. The paper's instantiation (§V.B): 576 PEs, 256 kernel
// words per PE, 700 MHz, 3-stage pipelined MAC, dual ifmap channels.
#pragma once

#include <cstdint>
#include <string>

namespace chainnn::dataflow {

struct ArrayShape {
  std::int64_t num_pes = 576;
  std::int64_t kmem_words_per_pe = 256;  // 512B register file per PE
  double clock_hz = 700e6;
  int pipeline_stages = 3;  // per-PE MAC pipeline depth (§V.B)
  bool dual_channel = true;  // false models the single-channel Fig. 5(a) PE

  // Number of whole primitives of `taps` PEs that fit in the chain.
  [[nodiscard]] std::int64_t primitives_for(std::int64_t taps) const {
    return taps > 0 ? num_pes / taps : 0;
  }
  // Active PEs when regrouped for `taps`-PE primitives (Table II).
  [[nodiscard]] std::int64_t active_pes_for(std::int64_t taps) const {
    return primitives_for(taps) * taps;
  }
  [[nodiscard]] double pe_utilization_for(std::int64_t taps) const {
    return num_pes == 0 ? 0.0
                        : static_cast<double>(active_pes_for(taps)) /
                              static_cast<double>(num_pes);
  }

  // Peak throughput in ops/s counting 2 ops (mul + add) per MAC per cycle
  // — the paper's 806.4 GOPS for 576 PEs at 700 MHz.
  [[nodiscard]] double peak_ops_per_s() const {
    return 2.0 * static_cast<double>(num_pes) * clock_hz;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace chainnn::dataflow
