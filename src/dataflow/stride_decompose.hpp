// Kernel-phase decomposition of strided convolutions.
//
// The column-wise scan input pattern (§IV.C) delivers one convolution
// window per cycle only for stride-1 layers: the sliding-window property
// relies on vertically adjacent windows sharing all but one pixel of
// their column-wise scans. For stride S > 1 (AlexNet conv1, S = 4) that
// overlap breaks.
//
// We therefore execute strided layers as a sum of stride-1 sub-
// convolutions: partition kernel taps by (ky mod S, kx mod S). Phase
// (a, b) forms a ceil((K-a)/S) x ceil((K-b)/S) sub-kernel applied at
// stride 1 to the input decimated to the (a, b) sub-grid. Summing the
// S*S sub-convolutions reproduces the strided convolution exactly (the
// MAC count is unchanged: sub-kernel tap counts sum to K²), and every
// sub-convolution runs with the full dual-channel utilization.
//
// The paper itself never explains strided execution; its conv1 figures
// imply a 1/S utilization model, which we also provide analytically (see
// plan.hpp StridedTiming) so Fig. 9 can be reproduced in the paper's own
// terms.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/conv_params.hpp"

namespace chainnn::dataflow {

// One stride-1 sub-convolution of the phase decomposition.
struct SubConv {
  std::int64_t phase_row = 0;  // a = ky mod S of the taps in this phase
  std::int64_t phase_col = 0;  // b = kx mod S
  std::int64_t kernel_rows = 1;  // K_r = ceil((K-a)/S)
  std::int64_t kernel_cols = 1;  // K_c = ceil((K-b)/S)
  // Decimated (padded) input extent this phase reads.
  std::int64_t in_rows = 0;
  std::int64_t in_cols = 0;

  [[nodiscard]] std::int64_t taps() const { return kernel_rows * kernel_cols; }
};

// Decomposes `p` into stride-1 sub-convolutions. For stride-1 layers the
// result is a single SubConv equal to the layer itself (identity
// decomposition), so callers can treat all layers uniformly.
[[nodiscard]] std::vector<SubConv> decompose_strided(
    const nn::ConvLayerParams& p);

// Maps an original kernel tap (ky, kx) to its sub-conv and position.
struct TapMapping {
  std::int64_t sub_index = 0;   // index into decompose_strided() output
  std::int64_t sub_ky = 0;      // row inside the sub-kernel (= ky div S)
  std::int64_t sub_kx = 0;      // col inside the sub-kernel
};
[[nodiscard]] TapMapping map_tap(const nn::ConvLayerParams& p,
                                 std::int64_t ky, std::int64_t kx);

// The decimated-input coordinate (row) that sub-conv output row `oy`
// with sub-kernel row offset `j` touches, mapped back to padded-input
// coordinates: S*(oy + j) + phase.
[[nodiscard]] inline std::int64_t padded_row_of(std::int64_t stride,
                                                std::int64_t phase,
                                                std::int64_t decimated_row) {
  return stride * decimated_row + phase;
}

}  // namespace chainnn::dataflow
