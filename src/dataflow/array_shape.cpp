#include "dataflow/array_shape.hpp"

#include <sstream>

#include "common/units.hpp"

namespace chainnn::dataflow {

std::string ArrayShape::to_string() const {
  std::ostringstream os;
  os << num_pes << " PEs @ " << units::as_mhz(clock_hz) << " MHz, "
     << kmem_words_per_pe << " kernel words/PE, "
     << (dual_channel ? "dual" : "single") << "-channel, "
     << pipeline_stages << "-stage MAC";
  return os.str();
}

}  // namespace chainnn::dataflow
