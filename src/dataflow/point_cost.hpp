// No-hierarchy point costing — the closed-form fast path the design-space
// search evaluates millions of points with (ROADMAP item 4).
//
// The executed path (ChainAccelerator → NetworkRunner → SweepDriver)
// computes per-layer cycles from the very closed forms the plan carries,
// then *also* allocates tensors, streams them, and charges a
// mem::MemoryHierarchy — none of which changes the rolled-up
// cycles/seconds/energy figures. estimate_point_cost() keeps only the
// arithmetic:
//
//   cycles_l  = kernel_load_cycles_per_batch()
//             + batch * stream_cycles_per_image()
//             + drain_cycles()            // paid once, as the engines do
//   seconds_l = cycles_l / clock_hz
//   energy_l  = power(rates_from_plan(plan)).total() * seconds_l
//   area      = AreaModel logic + on-chip SRAM gates
//
// These are the *same* expressions (same operations, same order) the
// executed rollup evaluates, so on any point both paths can execute the
// agreement is exact for cycles and bit-tight for the double figures —
// tests/dataflow/test_point_cost.cpp pins the cross-check against
// executed SweepDriver rollups on the default sweep grid.
//
// Per-point cost is a handful of multiply-adds per layer once the plans
// exist; serve::DesignSearch caches the per-layer LayerCostModel across
// the clock and channel-mode axes (neither enters the plan key) to keep
// it that way.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dataflow/array_shape.hpp"
#include "dataflow/plan.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "mem/hierarchy.hpp"
#include "nn/conv_params.hpp"

namespace chainnn::dataflow {

// The per-layer invariants of the no-hierarchy cost path: everything a
// point's cycles/energy need that does not depend on clock frequency or
// batch size. Derived once per (layer, chain structure, channel mode)
// and reused across every point sharing them.
struct LayerCostModel {
  std::int64_t kernel_load_cycles = 0;      // once per batch (§V.B)
  std::int64_t stream_cycles_per_image = 0;
  std::int64_t drain_cycles = 0;            // overlaps streams; paid once
  energy::ActivityRates rates;              // per-cycle, clock-free
};

// Reads the closed forms off a plan whose `array` field is the array the
// point actually runs (plan_layer and PlanCache::plan_for both stamp the
// caller's array, so plans from either are safe here; a shared_plan_for
// entry is not — its stored array may differ in dual_channel).
[[nodiscard]] LayerCostModel layer_cost_model(const ExecutionPlan& plan);

struct PointCost {
  bool feasible = true;
  std::string infeasible_reason;  // first unmappable layer, when any
  std::int64_t total_cycles = 0;  // whole batch, all layers
  double seconds = 0.0;
  double energy_j = 0.0;
  double area_gates = 0.0;  // logic + on-chip SRAM gate equivalents

  // Strict Pareto dominance: `b` is worse than *this on every objective.
  // (Ties on any axis mean neither dominates, so e.g. clock variants —
  // identical cycles and area — never eliminate each other.)
  [[nodiscard]] bool dominates(const PointCost& b) const {
    return feasible && b.feasible && total_cycles < b.total_cycles &&
           energy_j < b.energy_j && area_gates < b.area_gates;
  }
};

// Accumulates the per-layer models into a point cost at `clock_hz` on
// `num_pes` PEs, mirroring the executed rollup term for term. The area
// figure is passed through verbatim (it is a property of the point, not
// of the layers).
[[nodiscard]] PointCost accumulate_point_cost(
    const std::vector<const LayerCostModel*>& layers, double clock_hz,
    std::int64_t num_pes, std::int64_t batch,
    const energy::EnergyModel& energy, double area_gates);

// On-chip SRAM bytes of a design point: iMemory + oMemory capacities
// plus the kernel register files, which track the chain
// (num_pes x kmem_words_per_pe x word_bytes — 295KB for the paper's
// 576 x 256 x 2B, matching HierarchyConfig::kmemory_bytes).
[[nodiscard]] std::uint64_t point_sram_bytes(
    const ArrayShape& array, const mem::HierarchyConfig& memory);

// Plan provider, so callers with a cache (serve::PlanCache::plan_for has
// exactly this shape) can inject it; the default builds plans directly
// with plan_layer. Must throw where plan_layer throws — that is how an
// unmappable layer becomes an infeasible point.
using PlanSource = std::function<ExecutionPlan(
    const nn::ConvLayerParams& layer, const ArrayShape& array,
    const mem::HierarchyConfig& memory)>;

struct PointCostOptions {
  std::int64_t batch = 1;
  energy::EnergyModel energy = energy::EnergyModel::paper_calibrated();
  energy::AreaModel area;
  PlanSource plan_source;  // empty = plan_layer
};

// Closed-form cost of running `layers` (already resolved to the H/W they
// execute at — serve::resolve_network_layers) on (array, memory).
// Unmappable layers (kernel taps exceeding the chain, partials
// overflowing oMemory) yield feasible == false instead of throwing.
[[nodiscard]] PointCost estimate_point_cost(
    const std::vector<nn::ConvLayerParams>& layers, const ArrayShape& array,
    const mem::HierarchyConfig& memory, const PointCostOptions& options = {});

}  // namespace chainnn::dataflow
