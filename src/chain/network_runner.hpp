// NetworkRunner: executes a whole convolutional network on Chain-NN — the
// conv layers on the chain (cycle-accurately or on the analytical fast
// path, see NetworkRunOptions::exec_mode), the host-side layers (ReLU,
// pooling) in between — and rolls per-layer results up into the
// batch-level figures the paper reports (fps, time split, traffic,
// modelled power/energy).
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "chain/accelerator.hpp"
#include "energy/energy_model.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"

namespace chainnn::chain {

// Thrown when NetworkRunOptions::cancel_check asks a run to stop at an
// inter-layer checkpoint (the serving layer's deadline/cancellation
// path). Carries how many conv layers had fully executed, so callers can
// account the abandoned work.
class RunCancelled : public std::runtime_error {
 public:
  explicit RunCancelled(std::int64_t completed_layers)
      : std::runtime_error("network run cancelled after " +
                           std::to_string(completed_layers) + " layer(s)"),
        completed_layers_(completed_layers) {}
  [[nodiscard]] std::int64_t completed_layers() const {
    return completed_layers_;
  }

 private:
  std::int64_t completed_layers_ = 0;
};

// Host-side processing applied to a layer's output before it feeds the
// next conv layer.
struct InterLayerOp {
  bool relu = true;
  bool pool = false;
  nn::PoolParams pool_params{3, 2, 0};  // AlexNet-style overlapped pool
};

struct NetworkLayerResult {
  nn::ConvLayerParams layer;  // as actually executed (resolved H/W)
  LayerRunResult run;
  energy::PowerBreakdown power;  // modelled during this layer
  bool verified = false;         // bit-exact vs golden (when enabled)
};

struct NetworkRunResult {
  std::vector<NetworkLayerResult> layers;
  Tensor<std::int16_t> final_activations;

  [[nodiscard]] double total_seconds() const;
  [[nodiscard]] double kernel_load_seconds() const;
  // Energy integrates each layer's modelled power over its time.
  [[nodiscard]] double total_energy_j() const;
  // Frames/s for a batch: per-image conv time plus once-per-batch loads.
  [[nodiscard]] double fps(std::int64_t batch) const;
  [[nodiscard]] bool all_verified() const;
};

struct NetworkRunOptions {
  bool verify_against_golden = true;
  // Inter-layer ops per conv layer; defaults applied when shorter than
  // the network (ReLU only).
  std::vector<InterLayerOp> inter_layer;
  // Weight initializer; defaults to deterministic small uniforms.
  std::function<void(std::int64_t layer_index, Tensor<std::int16_t>&)>
      weight_init;
  // Batch-parallel execution: shard each layer's batch across this many
  // worker threads (BatchExecutor). 1 = today's serial path, bit-exactly;
  // any value produces bit-identical ofmaps, cycles and traffic.
  std::int64_t num_workers = 1;
  // Overrides the accelerator's configured ExecMode for this run (e.g. a
  // cycle-accurate-configured accelerator can profile a network on the
  // analytical fast path without being reconfigured). nullopt keeps the
  // accelerator's own cfg.exec_mode.
  std::optional<ExecMode> exec_mode;
  // Plan cache for this run, shared with whoever else holds it (server
  // workers, other runs, sweep points). nullptr keeps the accelerator's
  // own cache. Semantics-free: results are bit-identical either way.
  std::shared_ptr<serve::PlanCache> plan_cache;
  // Cooperative cancellation, polled at a checkpoint before every conv
  // layer: when it returns true the run throws RunCancelled instead of
  // starting the next layer. Layers are never interrupted mid-flight, so
  // a cancelled run leaves no half-written accelerator state behind.
  std::function<bool()> cancel_check;
};

class NetworkRunner {
 public:
  explicit NetworkRunner(ChainAccelerator& accelerator,
                         const energy::EnergyModel& energy_model)
      : acc_(accelerator), energy_(energy_model) {}

  // Runs `net` on `input` {N, C0, H0, W0}. Layer spatial sizes are
  // resolved from the flowing activations (the zoo's nominal sizes are
  // overridden so pooled sizes chain correctly).
  [[nodiscard]] NetworkRunResult run(const nn::NetworkModel& net,
                                     const Tensor<std::int16_t>& input,
                                     const NetworkRunOptions& options = {});

 private:
  ChainAccelerator& acc_;
  const energy::EnergyModel& energy_;
};

}  // namespace chainnn::chain
