// NetworkRunner: executes a whole convolutional network on Chain-NN — the
// conv layers on the chain (cycle-accurately or on the analytical fast
// path, see NetworkRunOptions::exec_mode), the host-side layers (ReLU,
// pooling) in between — and rolls per-layer results up into the
// batch-level figures the paper reports (fps, time split, traffic,
// modelled power/energy).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "energy/energy_model.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"

namespace chainnn::chain {

// Thrown when NetworkRunOptions::cancel_check asks a run to stop at an
// inter-layer checkpoint (the serving layer's deadline/cancellation
// path). Carries how many conv layers had fully executed, so callers can
// account the abandoned work.
class RunCancelled : public std::runtime_error {
 public:
  explicit RunCancelled(std::int64_t completed_layers)
      : std::runtime_error("network run cancelled after " +
                           std::to_string(completed_layers) + " layer(s)"),
        completed_layers_(completed_layers) {}
  [[nodiscard]] std::int64_t completed_layers() const {
    return completed_layers_;
  }

 private:
  std::int64_t completed_layers_ = 0;
};

// Host-side processing applied to a layer's output before it feeds the
// next conv layer.
struct InterLayerOp {
  bool relu = true;
  bool pool = false;
  nn::PoolParams pool_params{3, 2, 0};  // AlexNet-style overlapped pool
};

struct NetworkLayerResult {
  nn::ConvLayerParams layer;  // as actually executed (resolved H/W)
  LayerRunResult run;
  energy::PowerBreakdown power;  // modelled during this layer
  bool verified = false;         // bit-exact vs golden (when enabled)
};

// Everything a network run holds at an inter-layer boundary: the fully
// executed prefix (per-layer results carry their accumulated RunStats,
// traffic and modelled power verbatim), the activations feeding the next
// conv layer, and the state of the default weight stream. Layer
// boundaries are the only capture points — a layer is never interrupted
// mid-flight, so there is no half-written accelerator state to save —
// which makes the guarantee cheap and absolute: resuming a checkpoint on
// the same configuration reproduces the uninterrupted run bit for bit
// (ofmaps, cycles, traffic); resuming on a different ArrayShape re-plans
// the remaining layers and stays value-identical on ofmaps.
struct RunCheckpoint {
  // Index of the first conv layer not yet executed; layers[0..next_layer)
  // are complete. May equal the network size only on a resumed
  // checkpoint handed back in (a fresh capture always has work left).
  std::int64_t next_layer = 0;
  std::vector<NetworkLayerResult> layers;
  // Input to layer `next_layer` (inter-layer ReLU/pool already applied).
  Tensor<std::int16_t> activations;
  // Default weight stream at the boundary. The default initializer draws
  // all layers from one stateful stream, so a resume must continue it —
  // not restart it — to draw the same kernels the uninterrupted run
  // would. A caller-supplied weight_init is (layer, tensor)-pure and
  // needs no state here.
  Rng weight_rng;
};

// Thrown when NetworkRunOptions::preempt_check asks a run to yield at an
// inter-layer checkpoint. Carries the checkpoint by shared_ptr (thrown
// objects are copied; the captured tensors are not).
class RunPreempted : public std::runtime_error {
 public:
  explicit RunPreempted(std::shared_ptr<RunCheckpoint> checkpoint)
      : std::runtime_error("network run preempted after " +
                           std::to_string(checkpoint->next_layer) +
                           " layer(s)"),
        checkpoint_(std::move(checkpoint)) {}
  [[nodiscard]] const std::shared_ptr<RunCheckpoint>& checkpoint() const {
    return checkpoint_;
  }

 private:
  std::shared_ptr<RunCheckpoint> checkpoint_;
};

struct NetworkRunResult {
  std::vector<NetworkLayerResult> layers;
  Tensor<std::int16_t> final_activations;

  [[nodiscard]] double total_seconds() const;
  [[nodiscard]] double kernel_load_seconds() const;
  // Energy integrates each layer's modelled power over its time.
  [[nodiscard]] double total_energy_j() const;
  // Frames/s for a batch: per-image conv time plus once-per-batch loads.
  [[nodiscard]] double fps(std::int64_t batch) const;
  [[nodiscard]] bool all_verified() const;
};

struct NetworkRunOptions {
  bool verify_against_golden = true;
  // Inter-layer ops per conv layer; defaults applied when shorter than
  // the network (ReLU only).
  std::vector<InterLayerOp> inter_layer;
  // Weight initializer; defaults to deterministic small uniforms.
  std::function<void(std::int64_t layer_index, Tensor<std::int16_t>&)>
      weight_init;
  // Batch-parallel execution: shard each layer's batch across this many
  // worker threads (BatchExecutor). 1 = today's serial path, bit-exactly;
  // any value produces bit-identical ofmaps, cycles and traffic.
  std::int64_t num_workers = 1;
  // Overrides the accelerator's configured ExecMode for this run (e.g. a
  // cycle-accurate-configured accelerator can profile a network on the
  // analytical fast path without being reconfigured). nullopt keeps the
  // accelerator's own cfg.exec_mode.
  std::optional<ExecMode> exec_mode;
  // Plan cache for this run, shared with whoever else holds it (server
  // workers, other runs, sweep points). nullptr keeps the accelerator's
  // own cache. Semantics-free: results are bit-identical either way.
  std::shared_ptr<serve::PlanCache> plan_cache;
  // Tensor pool for this run's working buffers (see tensor/arena.hpp).
  // nullptr keeps the accelerator config's own arena (which may also be
  // null — plain heap allocation). Semantics-free like the plan cache.
  std::shared_ptr<TensorArena> arena;
  // Cooperative cancellation, polled at a checkpoint before every conv
  // layer: when it returns true the run throws RunCancelled instead of
  // starting the next layer. Layers are never interrupted mid-flight, so
  // a cancelled run leaves no half-written accelerator state behind.
  std::function<bool()> cancel_check;
  // Cooperative preemption, polled at the same inter-layer boundary
  // (after cancel_check — a dead request is cancelled, not checkpointed):
  // when it returns true the run stops and throws RunPreempted carrying a
  // RunCheckpoint of everything completed so far. The serving layer uses
  // this to yield a chip to a higher-priority request without losing the
  // completed layers.
  std::function<bool()> preempt_check;
  // Resume a previously captured checkpoint instead of starting at layer
  // 0: the completed prefix is adopted verbatim (results, stats, traffic)
  // and execution continues at checkpoint->next_layer from
  // checkpoint->activations. `input` is ignored for the layers the
  // checkpoint already covers. Resuming on the same accelerator
  // configuration is bit-identical to an uninterrupted run; resuming on a
  // different ArrayShape re-plans the remaining layers (value-identical
  // ofmaps, different cycle accounting).
  std::shared_ptr<const RunCheckpoint> resume;
};

class NetworkRunner {
 public:
  explicit NetworkRunner(ChainAccelerator& accelerator,
                         const energy::EnergyModel& energy_model)
      : acc_(accelerator), energy_(energy_model) {}

  // Runs `net` on `input` {N, C0, H0, W0}. Layer spatial sizes are
  // resolved from the flowing activations (the zoo's nominal sizes are
  // overridden so pooled sizes chain correctly).
  [[nodiscard]] NetworkRunResult run(const nn::NetworkModel& net,
                                     const Tensor<std::int16_t>& input,
                                     const NetworkRunOptions& options = {});

 private:
  ChainAccelerator& acc_;
  const energy::EnergyModel& energy_;
};

}  // namespace chainnn::chain
