// Configuration of a Chain-NN accelerator instance.
#pragma once

#include "dataflow/array_shape.hpp"
#include "fixed/fixed16.hpp"
#include "mem/hierarchy.hpp"

namespace chainnn::chain {

// How oMemory stores partial sums between accumulation passes.
enum class PsumStorage {
  // 48-bit accumulators kept exactly across passes (verification mode —
  // matches the wide golden model bit for bit regardless of pass order).
  kWide,
  // 16-bit partials in psum format, requantized after every pass — the
  // hardware behaviour implied by Table IV's oMemory traffic (2 bytes per
  // partial access). Matches the wide result whenever the psum format has
  // enough headroom (tests pin both regimes).
  kStaged16,
};

struct AcceleratorConfig {
  dataflow::ArrayShape array;
  mem::HierarchyConfig memory;

  fixed::FixedFormat ifmap_fmt{8};
  fixed::FixedFormat kernel_fmt{8};
  // Format of staged partials and of the final 16-bit ofmaps.
  fixed::FixedFormat psum_fmt{8};
  fixed::FixedFormat ofmap_fmt{8};
  fixed::Rounding rounding = fixed::Rounding::kNearestEven;

  PsumStorage psum_storage = PsumStorage::kWide;
};

}  // namespace chainnn::chain
