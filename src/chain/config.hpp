// Configuration of a Chain-NN accelerator instance.
#pragma once

#include <memory>
#include <string_view>

#include "dataflow/array_shape.hpp"
#include "fixed/fixed16.hpp"
#include "mem/hierarchy.hpp"
#include "tensor/arena.hpp"

namespace chainnn::chain {

// How a layer is executed.
enum class ExecMode {
  // Register-level simulation: the LayerController drives the systolic
  // chain slot by slot. Ground truth for cycles and traffic; slow.
  kCycleAccurate,
  // Analytical fast path: ofmaps come from the golden fixed-point model
  // (bit-identical arithmetic), cycles and per-level traffic from the
  // plan's closed forms — which the test suite proves equal the measured
  // counts of the cycle-accurate controller. Orders of magnitude faster;
  // use it for sweeps, DSE and full-network profiling.
  kAnalytical,
};

[[nodiscard]] constexpr const char* exec_mode_name(ExecMode m) {
  return m == ExecMode::kAnalytical ? "analytical" : "cycle-accurate";
}

// Parses "analytical" / "cycle-accurate" (also "cycle"); returns true on
// success. Used by the --exec-mode flags of the bench/example binaries.
[[nodiscard]] constexpr bool parse_exec_mode(std::string_view name,
                                             ExecMode* out) {
  if (name == "analytical") {
    *out = ExecMode::kAnalytical;
    return true;
  }
  if (name == "cycle-accurate" || name == "cycle") {
    *out = ExecMode::kCycleAccurate;
    return true;
  }
  return false;
}

// How oMemory stores partial sums between accumulation passes.
enum class PsumStorage {
  // 48-bit accumulators kept exactly across passes (verification mode —
  // matches the wide golden model bit for bit regardless of pass order).
  kWide,
  // 16-bit partials in psum format, requantized after every pass — the
  // hardware behaviour implied by Table IV's oMemory traffic (2 bytes per
  // partial access). Matches the wide result whenever the psum format has
  // enough headroom (tests pin both regimes).
  kStaged16,
};

struct AcceleratorConfig {
  dataflow::ArrayShape array;
  mem::HierarchyConfig memory;

  fixed::FixedFormat ifmap_fmt{8};
  fixed::FixedFormat kernel_fmt{8};
  // Format of staged partials and of the final 16-bit ofmaps.
  fixed::FixedFormat psum_fmt{8};
  fixed::FixedFormat ofmap_fmt{8};
  fixed::Rounding rounding = fixed::Rounding::kNearestEven;

  PsumStorage psum_storage = PsumStorage::kWide;

  // Execution engine. The analytical fast path returns bit-identical
  // ofmaps and identical cycle/traffic totals (pinned by the exec-mode
  // equivalence sweep in tests/chain/test_exec_mode.cpp).
  ExecMode exec_mode = ExecMode::kCycleAccurate;

  // Pooled allocator for the run's working tensors (accumulator and
  // ofmap surfaces, shard input slices). Semantics-free — results are
  // bit-identical with or without it; nullptr allocates from the heap
  // as before. Travels with config copies, so BatchExecutor shard
  // clones and per-request accelerators share the owner's pool.
  std::shared_ptr<TensorArena> arena;
};

}  // namespace chainnn::chain
