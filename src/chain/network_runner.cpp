#include "chain/network_runner.hpp"

#include <memory>

#include "chain/batch_executor.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/golden.hpp"

namespace chainnn::chain {

double NetworkRunResult::total_seconds() const {
  double s = 0.0;
  for (const auto& l : layers) s += l.run.seconds();
  return s;
}

double NetworkRunResult::kernel_load_seconds() const {
  double s = 0.0;
  for (const auto& l : layers)
    s += static_cast<double>(l.run.stats.kernel_load_cycles) /
         l.run.plan.array.clock_hz;
  return s;
}

double NetworkRunResult::total_energy_j() const {
  double e = 0.0;
  for (const auto& l : layers) e += l.power.total() * l.run.seconds();
  return e;
}

double NetworkRunResult::fps(std::int64_t batch) const {
  CHAINNN_CHECK(batch > 0);
  const double per_image = total_seconds() - kernel_load_seconds();
  const double batch_time =
      kernel_load_seconds() + static_cast<double>(batch) * per_image;
  return static_cast<double>(batch) / batch_time;
}

bool NetworkRunResult::all_verified() const {
  for (const auto& l : layers)
    if (!l.verified) return false;
  return true;
}

NetworkRunResult NetworkRunner::run(const nn::NetworkModel& net,
                                    const Tensor<std::int16_t>& input,
                                    const NetworkRunOptions& options) {
  CHAINNN_CHECK(input.shape().rank() == 4);
  NetworkRunResult result;
  Tensor<std::int16_t> act = input;
  Rng rng(0xC0FFEE);
  std::size_t first_layer = 0;
  if (options.resume) {
    const RunCheckpoint& cp = *options.resume;
    CHAINNN_CHECK_MSG(
        cp.next_layer >= 0 &&
            cp.next_layer <=
                static_cast<std::int64_t>(net.conv_layers.size()),
        "checkpoint resumes at layer " << cp.next_layer << " of a "
                                       << net.conv_layers.size()
                                       << "-layer network");
    CHAINNN_CHECK_MSG(
        cp.layers.size() == static_cast<std::size_t>(cp.next_layer),
        "checkpoint carries " << cp.layers.size() << " layer result(s) but "
                              << "resumes at layer " << cp.next_layer);
    CHAINNN_CHECK(cp.activations.shape().rank() == 4);
    first_layer = static_cast<std::size_t>(cp.next_layer);
    result.layers = cp.layers;
    act = cp.activations;
    rng = cp.weight_rng;
  }

  CHAINNN_CHECK_MSG(options.num_workers >= 1,
                    "num_workers must be >= 1, got " << options.num_workers);
  AcceleratorConfig effective_cfg = acc_.config();
  if (options.exec_mode) effective_cfg.exec_mode = *options.exec_mode;
  if (options.arena) effective_cfg.arena = options.arena;
  std::unique_ptr<BatchExecutor> executor;
  if (options.num_workers > 1 ||
      effective_cfg.exec_mode != acc_.config().exec_mode ||
      options.plan_cache || options.arena) {
    // The executor owns per-shard accelerator clones carrying the
    // effective config; with one worker it runs serially on the calling
    // thread, so an exec-mode override or injected plan cache never
    // mutates the caller's accelerator.
    BatchExecutorConfig exec_cfg;
    exec_cfg.num_workers = options.num_workers;
    exec_cfg.plan_cache = options.plan_cache;
    executor = std::make_unique<BatchExecutor>(effective_cfg, exec_cfg);
  }

  for (std::size_t i = first_layer; i < net.conv_layers.size(); ++i) {
    if (options.cancel_check && options.cancel_check())
      throw RunCancelled(static_cast<std::int64_t>(i));
    if (options.preempt_check && options.preempt_check()) {
      auto cp = std::make_shared<RunCheckpoint>();
      cp->next_layer = static_cast<std::int64_t>(i);
      cp->layers = std::move(result.layers);
      cp->activations = std::move(act);
      cp->weight_rng = rng;
      throw RunPreempted(std::move(cp));
    }
    nn::ConvLayerParams layer = net.conv_layers[i];
    layer.batch = act.shape().dim(0);
    layer.in_height = act.shape().dim(2);
    layer.in_width = act.shape().dim(3);
    CHAINNN_CHECK_MSG(act.shape().dim(1) == layer.in_channels,
                      net.name << "/" << layer.name << ": expected "
                               << layer.in_channels << " channels, got "
                               << act.shape().dim(1));
    layer.validate();

    Tensor<std::int16_t> kernels(Shape{layer.out_channels,
                                       layer.channels_per_group(),
                                       layer.kernel, layer.kernel});
    if (options.weight_init) {
      options.weight_init(static_cast<std::int64_t>(i), kernels);
    } else {
      kernels.fill_random(rng, -16, 16);
    }

    NetworkLayerResult lr;
    lr.layer = layer;
    lr.run = executor ? executor->run_layer(layer, act, kernels)
                      : acc_.run_layer(layer, act, kernels);
    if (!options.verify_against_golden) {
      lr.verified = true;
    } else if (effective_cfg.exec_mode == ExecMode::kAnalytical &&
               effective_cfg.psum_storage == PsumStorage::kWide) {
      // The analytical wide path computes its accumulators *with* the
      // golden model; re-deriving the oracle would compare it to itself.
      lr.verified = true;
    } else {
      lr.verified = lr.run.accumulators ==
                    nn::conv2d_fixed_accum(layer, act, kernels);
    }
    lr.power = energy_.power(energy::rates_from_plan(lr.run.plan),
                             lr.run.plan.array.clock_hz,
                             lr.run.plan.array.num_pes);

    Tensor<std::int16_t> out = lr.run.ofmaps;
    const InterLayerOp op = i < options.inter_layer.size()
                                ? options.inter_layer[i]
                                : InterLayerOp{};
    if (op.relu) nn::relu_inplace(out);
    if (op.pool) out = nn::max_pool(out, op.pool_params);
    act = std::move(out);
    result.layers.push_back(std::move(lr));
  }
  result.final_activations = std::move(act);
  return result;
}

}  // namespace chainnn::chain
