// The Chain-NN finite-state-machine controller (§III.B): initialized to
// layer parameters, loads kernels, then streams ifmaps pass by pass.
//
// State sequence per layer:
//   kIdle -> kLoadKernels -> kStream (per pass) -> ... -> kDrain -> kIdle
//
// The controller walks the ExecutionPlan loop nest
//   m_group -> c_tile -> [load kernels] -> image -> phase -> strip -> c
// and for every pass drives the SystolicChain one stream slot per cycle,
// collecting completed windows into the accumulation surface (the
// logical oMemory content), charging all memories as it goes.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/chain_core.hpp"
#include "chain/config.hpp"
#include "dataflow/plan.hpp"
#include "mem/hierarchy.hpp"
#include "tensor/tensor.hpp"

namespace chainnn::chain {

enum class ControllerState { kIdle, kLoadKernels, kStream, kDrain };

[[nodiscard]] const char* state_name(ControllerState s);

// Cycle / work accounting for one layer run (whole batch).
struct RunStats {
  std::int64_t kernel_load_cycles = 0;
  std::int64_t stream_cycles = 0;   // per batch (all images)
  std::int64_t drain_cycles = 0;
  std::int64_t windows_collected = 0;
  std::int64_t macs_performed = 0;  // real (non-masked) MACs
  std::int64_t passes = 0;

  // Plan-cache behaviour of this run (hits + misses = plan lookups the
  // run performed; entries = cache size afterwards). Host-side
  // accounting only — never part of the modelled cycles; sharded runs
  // sum hits/misses across shards.
  std::int64_t plan_cache_hits = 0;
  std::int64_t plan_cache_misses = 0;
  std::int64_t plan_cache_entries = 0;

  // Analytical MAC-kernel routing (host-side accounting like the
  // plan-cache counters, never part of the modelled cycles): layer runs
  // dispatched to the vectorized saturation-free fast path vs the exact
  // scalar sticky-clamp reference (see nn/conv_kernel.hpp). Both stay 0
  // for cycle-accurate and staged-psum runs, which don't go through the
  // dispatcher; sharded runs sum across shards.
  std::int64_t kernel_fast_dispatches = 0;
  std::int64_t kernel_scalar_dispatches = 0;

  [[nodiscard]] std::int64_t total_cycles() const {
    return kernel_load_cycles + stream_cycles + drain_cycles;
  }
};

// Runs one layer, bit-exactly, on the register-level chain model.
class LayerController {
 public:
  LayerController(const AcceleratorConfig& cfg,
                  const dataflow::ExecutionPlan& plan,
                  mem::MemoryHierarchy& hierarchy);

  // `ifmaps` {N,C,H,W} and `kernels` {M,C/g,K,K} are raw 16-bit words.
  // Returns wide accumulators {N,M,E_h,E_w}; `stats` receives the cycle
  // accounting. In kStaged16 mode the accumulators hold the staged
  // 16-bit partials (sign-extended).
  [[nodiscard]] Tensor<std::int64_t> run(const Tensor<std::int16_t>& ifmaps,
                                         const Tensor<std::int16_t>& kernels,
                                         RunStats& stats);

  [[nodiscard]] ControllerState state() const { return state_; }

  // Sequence of states entered during run() (§III.B's FSM execution
  // procedure), capped at kFsmTraceCap entries.
  static constexpr std::size_t kFsmTraceCap = 4096;
  [[nodiscard]] const std::vector<ControllerState>& fsm_trace() const {
    return fsm_trace_;
  }

 private:
  struct MGroup {
    std::int64_t group = 0;            // convolution group index
    std::int64_t first_m = 0;          // first ofmap channel (absolute)
    std::int64_t kernels_resident = 0; // <= primitives
  };

  void load_kernels_for(const MGroup& mg, std::int64_t c_tile_idx,
                        const Tensor<std::int16_t>& kernels,
                        RunStats& stats);
  void run_pass(const MGroup& mg, std::int64_t image,
                std::int64_t sub_index, const dataflow::Strip& strip,
                std::int64_t c_abs, std::int64_t c_local,
                const Tensor<std::int16_t>& ifmaps,
                Tensor<std::int64_t>& acc, RunStats& stats);

  // Accumulates one completed window psum into the surface under the
  // configured PsumStorage policy; charges oMemory.
  void accumulate(Tensor<std::int64_t>& acc, std::int64_t n, std::int64_t m,
                  std::int64_t oy, std::int64_t ox, std::int64_t psum,
                  bool first_pass);

  void enter_state(ControllerState s);

  const AcceleratorConfig& cfg_;
  const dataflow::ExecutionPlan& plan_;
  mem::MemoryHierarchy& hierarchy_;
  SystolicChain chain_;
  ControllerState state_ = ControllerState::kIdle;
  std::vector<ControllerState> fsm_trace_;
  std::vector<MGroup> m_groups_;
};

}  // namespace chainnn::chain
