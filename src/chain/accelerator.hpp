// ChainAccelerator — the public entry point of the Chain-NN library.
//
// Wraps the dataflow compiler (ExecutionPlan), the register-level chain
// model (SystolicChain + LayerController) and the memory hierarchy into
// one object that runs convolutional layers bit-exactly and reports
// cycles, utilization and per-memory traffic. AcceleratorConfig::exec_mode
// selects between the cycle-accurate controller and the analytical fast
// path (same results, closed-form accounting — see config.hpp).
//
// Typical use (see examples/quickstart.cpp):
//
//   chain::AcceleratorConfig cfg;                  // paper's 576-PE chip
//   chain::ChainAccelerator acc(cfg);
//   auto result = acc.run_layer(layer, ifmaps, kernels);
//   // result.ofmaps    — 16-bit ofmaps (bit-exact vs. the golden model)
//   // result.stats     — cycles, windows, MACs
//   // result.traffic   — DRAM / iMemory / kMemory / oMemory bytes
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/config.hpp"
#include "chain/controller.hpp"
#include "dataflow/plan.hpp"
#include "dataflow/traffic.hpp"
#include "mem/hierarchy.hpp"
#include "nn/conv_params.hpp"
#include "serve/plan_cache.hpp"
#include "tensor/tensor.hpp"

namespace chainnn::chain {

struct LayerRunResult {
  dataflow::ExecutionPlan plan;
  Tensor<std::int64_t> accumulators;  // wide psums (or staged partials)
  Tensor<std::int16_t> ofmaps;        // requantized outputs
  RunStats stats;
  mem::LayerTraffic traffic;          // measured (counter deltas)
  fixed::NarrowingStats narrowing;

  // Seconds for the whole batch at the configured clock.
  [[nodiscard]] double seconds() const;
  // Achieved throughput in ops/s (2 ops per MAC) over the batch.
  [[nodiscard]] double achieved_ops_per_s() const;
  [[nodiscard]] double utilization() const;

  // The clock the run was stamped with (what seconds() divides by).
  // restore_clock_hz exists for checkpoint deserialization only
  // (serve/durable.cpp), which must rebuild results verbatim.
  [[nodiscard]] double clock_hz() const { return clock_hz_; }
  void restore_clock_hz(double clock_hz) { clock_hz_ = clock_hz; }

 private:
  friend class ChainAccelerator;
  friend LayerRunResult merge_shard_results(
      const dataflow::ExecutionPlan& plan, double clock_hz,
      std::uint64_t word_bytes, const std::vector<LayerRunResult>& shards);
  double clock_hz_ = 0.0;
};

class ChainAccelerator {
 public:
  // All plan lookups go through `plan_cache`; pass a shared cache to pool
  // plans across accelerators (BatchExecutor shards, server workers,
  // sweep points). The default — no cache given — creates a private
  // per-accelerator cache, which preserves the historical behaviour
  // bit-for-bit (the cache is semantics-free; see serve/plan_cache.hpp).
  explicit ChainAccelerator(const AcceleratorConfig& cfg = {},
                            std::shared_ptr<serve::PlanCache> plan_cache =
                                nullptr);

  [[nodiscard]] const AcceleratorConfig& config() const { return cfg_; }
  [[nodiscard]] const std::shared_ptr<serve::PlanCache>& plan_cache() const {
    return plan_cache_;
  }
  [[nodiscard]] mem::MemoryHierarchy& hierarchy() { return hierarchy_; }
  [[nodiscard]] const mem::MemoryHierarchy& hierarchy() const {
    return hierarchy_;
  }

  // Runs one conv layer (whole batch) under cfg.exec_mode: either the
  // cycle-accurate chain model or the analytical fast path, which
  // returns bit-identical ofmaps/accumulators and identical cycle and
  // per-level traffic totals orders of magnitude faster.
  // `bias`, if given, is {M} in ofmap format, applied at requantization.
  [[nodiscard]] LayerRunResult run_layer(
      const nn::ConvLayerParams& layer, const Tensor<std::int16_t>& ifmaps,
      const Tensor<std::int16_t>& kernels,
      const Tensor<std::int16_t>* bias = nullptr);

  // Plans a layer without running it (for sizing / DSE).
  [[nodiscard]] dataflow::ExecutionPlan plan(
      const nn::ConvLayerParams& layer) const;

  // Float convenience wrapper: quantizes inputs/weights to the
  // configured formats (the paper's float-to-fixed flow, §V.A), runs the
  // chain, and returns dequantized float outputs alongside the raw
  // result. `quantization` (optional) receives the conversion stats.
  struct FloatRunResult {
    LayerRunResult raw;
    Tensor<float> ofmaps;
  };
  [[nodiscard]] FloatRunResult run_layer_float(
      const nn::ConvLayerParams& layer, const Tensor<float>& ifmaps,
      const Tensor<float>& kernels,
      fixed::NarrowingStats* quantization = nullptr);

 private:
  AcceleratorConfig cfg_;
  mem::MemoryHierarchy hierarchy_;
  std::shared_ptr<serve::PlanCache> plan_cache_;
};

// Reference for the kStaged16 accumulation policy: replays the plan's
// (phase, channel) pass order on the golden per-pass psums so tests can
// pin the staged datapath bit-exactly (the wide policy is pinned against
// nn::conv2d_fixed_accum instead).
[[nodiscard]] Tensor<std::int64_t> staged_reference(
    const AcceleratorConfig& cfg, const dataflow::ExecutionPlan& plan,
    const Tensor<std::int16_t>& ifmaps, const Tensor<std::int16_t>& kernels);

}  // namespace chainnn::chain
