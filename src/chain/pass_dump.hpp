// Waveform dump of one strip pass — the debugging view an RTL engineer
// gets from simulating the chain: per-cycle channel inputs, per-PE mux
// selects and the primitive's psum outputs, written as a VCD document.
#pragma once

#include <cstdint>
#include <string>

#include "chain/scan_pattern.hpp"
#include "tensor/tensor.hpp"

namespace chainnn::chain {

struct PassDumpConfig {
  std::int64_t taps_phys = 9;
  std::int64_t kmem_words_per_pe = 4;
};

// Runs a single primitive over `strip` ({rows, cols} raw pixels) with the
// given scan-ordered kernel ({K_r, K_c}) and returns the VCD text with
// signals:
//   streamer.ch0_in / ch1_in  — channel head inputs
//   pe<i>.sel                 — multiplexer select
//   primitive.psum_out        — final psum register
//   primitive.window_valid    — collector valid decode
[[nodiscard]] std::string dump_pass_vcd(const StripPattern& pattern,
                                        const Tensor<std::int16_t>& strip,
                                        const Tensor<std::int16_t>& kernel);

}  // namespace chainnn::chain
