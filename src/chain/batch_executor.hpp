// BatchExecutor — batch-parallel layer execution on a pool of per-worker
// ChainAccelerator clones.
//
// Images of a batch are independent on Chain-NN (the controller's image
// loop sits inside every kernel residency), so a batch of N ifmaps can be
// sharded across W workers, each running a contiguous slice on its own
// accelerator instance, and the per-shard results merged back into the
// exact LayerRunResult the serial path would have produced:
//
//   * ofmaps / accumulators — contiguous slices along N, copied back in
//     image order;
//   * per-image counters (stream cycles, windows, MACs, passes, iMemory /
//     oMemory traffic) — summed in fixed shard order;
//   * once-per-batch costs (kernel load cycles, drain cycles, kMemory
//     kernel writes, DRAM kernel fetch) — every shard pays them once, so
//     the merge keeps a single copy and verifies all shards agree.
//
// The merge is algebraic, not approximate: tests pin bit-identical
// ofmaps, cycles and traffic against ChainAccelerator::run_layer for
// num_workers in {1, 2, 8} including non-divisible batch sizes.
//
// The executor is exec-mode agnostic: the AcceleratorConfig it clones
// carries ExecMode, so shards run cycle-accurately or on the analytical
// fast path as configured, and the same merge identities hold (the
// analytical path reproduces the controller's per-shard accounting,
// including the once-per-batch kernel costs the merge de-duplicates).
//
// Determinism: the reduction order over shards is fixed (shard 0..S-1
// regardless of thread completion order) and each worker owns an
// independent, deterministically seeded RNG stream (seed ^ splitmix(w))
// so any future stochastic model component (e.g. DRAM latency jitter)
// stays reproducible under parallel execution.
//
// Threading: the executor owns no threads. Shard tasks run on the
// process-wide common::WorkPool (helping semantics — the calling thread
// participates, so executors never deadlock each other however many are
// live at once); num_workers only chooses the shard count and the RNG
// stream count, both indexed by shard number, which is why results stay
// bit-identical no matter which pool thread runs which shard.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"

namespace chainnn::chain {

struct BatchExecutorConfig {
  // Maximum shards per layer run (the executor's share of the global
  // WorkPool). 1 keeps everything on the calling thread and is
  // bit-identical to ChainAccelerator::run_layer by construction.
  std::int64_t num_workers = 1;
  // Base seed for the per-worker RNG streams.
  std::uint64_t seed = 0xC4A15EEDULL;
  // Plan cache shared by the per-shard accelerator clones (thread-safe;
  // see serve/plan_cache.hpp). nullptr creates an executor-owned cache,
  // so every shard of every layer reuses one planning pass — results are
  // bit-identical either way (the cache is semantics-free).
  std::shared_ptr<serve::PlanCache> plan_cache;
};

class BatchExecutor {
 public:
  explicit BatchExecutor(const AcceleratorConfig& accelerator,
                         BatchExecutorConfig cfg = {});
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  [[nodiscard]] std::int64_t num_workers() const { return cfg_.num_workers; }
  [[nodiscard]] const AcceleratorConfig& accelerator_config() const {
    return acc_cfg_;
  }
  // The (shared or executor-owned) plan cache all shards resolve through.
  [[nodiscard]] const std::shared_ptr<serve::PlanCache>& plan_cache() const {
    return plan_cache_;
  }

  // The independent RNG stream of worker `w` (0 <= w < num_workers).
  [[nodiscard]] Rng& worker_rng(std::int64_t w);

  // Runs one conv layer's whole batch, sharded across the pool. The
  // result is bit-identical to ChainAccelerator(cfg).run_layer(...) on
  // the same arguments.
  [[nodiscard]] LayerRunResult run_layer(
      const nn::ConvLayerParams& layer, const Tensor<std::int16_t>& ifmaps,
      const Tensor<std::int16_t>& kernels,
      const Tensor<std::int16_t>* bias = nullptr);

  // Contiguous image range [first, last) assigned to shard `w` of `count`
  // over `batch` images; the remainder images go to the lowest shards.
  [[nodiscard]] static std::pair<std::int64_t, std::int64_t> shard_range(
      std::int64_t batch, std::int64_t w, std::int64_t count);

 private:
  // Runs `tasks` on the shared WorkPool (any thread may pick up any
  // task, including this one) and blocks until all complete. With a
  // single worker the tasks run inline without touching the pool.
  void run_tasks(std::vector<std::function<void()>>& tasks);

  AcceleratorConfig acc_cfg_;
  BatchExecutorConfig cfg_;
  std::shared_ptr<serve::PlanCache> plan_cache_;
  std::vector<Rng> rngs_;
  std::unique_ptr<ChainAccelerator> serial_acc_;  // lazy, single-shard path
};

// Merges per-shard layer results (contiguous image slices, in order) into
// the full-batch result. Exposed for tests; `plan` must be the plan of
// the full-batch layer and `word_bytes` the hierarchy word size.
[[nodiscard]] LayerRunResult merge_shard_results(
    const dataflow::ExecutionPlan& plan, double clock_hz,
    std::uint64_t word_bytes, const std::vector<LayerRunResult>& shards);

}  // namespace chainnn::chain
