#include "chain/batch_executor.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "common/work_pool.hpp"

namespace chainnn::chain {

namespace {

// SplitMix64 step — decorrelates the per-worker streams from the base
// seed (seed, seed+1, ... would start xoshiro states too close).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BatchExecutor::BatchExecutor(const AcceleratorConfig& accelerator,
                             BatchExecutorConfig cfg)
    : acc_cfg_(accelerator),
      cfg_(cfg),
      plan_cache_(cfg.plan_cache ? cfg.plan_cache
                                 : std::make_shared<serve::PlanCache>()) {
  CHAINNN_CHECK_MSG(cfg_.num_workers >= 1,
                    "num_workers must be >= 1, got " << cfg_.num_workers);
  rngs_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (std::int64_t w = 0; w < cfg_.num_workers; ++w)
    rngs_.emplace_back(mix(cfg_.seed + static_cast<std::uint64_t>(w)));
}

BatchExecutor::~BatchExecutor() = default;

Rng& BatchExecutor::worker_rng(std::int64_t w) {
  CHAINNN_CHECK_MSG(w >= 0 && w < cfg_.num_workers,
                    "worker " << w << " of " << cfg_.num_workers);
  return rngs_[static_cast<std::size_t>(w)];
}

void BatchExecutor::run_tasks(std::vector<std::function<void()>>& tasks) {
  if (cfg_.num_workers <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  common::WorkPool::shared().run_batch(std::move(tasks));
}

std::pair<std::int64_t, std::int64_t> BatchExecutor::shard_range(
    std::int64_t batch, std::int64_t w, std::int64_t count) {
  CHAINNN_CHECK(count >= 1 && w >= 0 && w < count);
  const std::int64_t base = batch / count;
  const std::int64_t extra = batch % count;
  const std::int64_t first = w * base + std::min(w, extra);
  const std::int64_t size = base + (w < extra ? 1 : 0);
  return {first, first + size};
}

LayerRunResult merge_shard_results(const dataflow::ExecutionPlan& plan,
                                   double clock_hz, std::uint64_t word_bytes,
                                   const std::vector<LayerRunResult>& shards) {
  CHAINNN_CHECK(!shards.empty());
  const nn::ConvLayerParams& layer = plan.layer;

  LayerRunResult merged;
  merged.plan = plan;
  merged.clock_hz_ = clock_hz;
  merged.accumulators = Tensor<std::int64_t>(
      Shape{layer.batch, layer.out_channels, layer.out_height(),
            layer.out_width()});
  merged.ofmaps = Tensor<std::int16_t>(merged.accumulators.shape());

  // Once-per-batch kernel traffic every shard paid: one kMemory write and
  // one DRAM fetch per weight word (see LayerController::load_kernels_for).
  const std::uint64_t kernel_bytes =
      static_cast<std::uint64_t>(plan.kernel_words_total()) * word_bytes;

  merged.traffic.layer_name = layer.name;
  std::int64_t image = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const LayerRunResult& r = shards[s];

    // Batch-independent costs must agree across shards.
    CHAINNN_CHECK_MSG(
        r.stats.kernel_load_cycles == shards[0].stats.kernel_load_cycles &&
            r.stats.drain_cycles == shards[0].stats.drain_cycles,
        "shard " << s << " disagrees on once-per-batch cycle costs");

    merged.stats.stream_cycles += r.stats.stream_cycles;
    merged.stats.windows_collected += r.stats.windows_collected;
    merged.stats.macs_performed += r.stats.macs_performed;
    merged.stats.passes += r.stats.passes;
    merged.stats.plan_cache_hits += r.stats.plan_cache_hits;
    merged.stats.plan_cache_misses += r.stats.plan_cache_misses;
    merged.stats.plan_cache_entries = std::max(
        merged.stats.plan_cache_entries, r.stats.plan_cache_entries);
    merged.stats.kernel_fast_dispatches += r.stats.kernel_fast_dispatches;
    merged.stats.kernel_scalar_dispatches += r.stats.kernel_scalar_dispatches;

    merged.traffic.imemory_bytes += r.traffic.imemory_bytes;
    merged.traffic.omemory_bytes += r.traffic.omemory_bytes;
    merged.traffic.kmemory_bytes += r.traffic.kmemory_bytes;
    merged.traffic.dram_bytes += r.traffic.dram_bytes;

    // Counters in NarrowingStats merge exactly; its double error sums are
    // added per-shard, so mean_sq_error may differ in the last ulp from
    // the serial order (the bit-identical guarantee covers ofmaps, cycles
    // and traffic).
    merged.narrowing.merge(r.narrowing);

    const std::int64_t shard_batch = r.accumulators.shape().dim(0);
    const auto offset = static_cast<std::size_t>(
        image * layer.out_channels * layer.out_height() * layer.out_width());
    std::copy(r.accumulators.data().begin(), r.accumulators.data().end(),
              merged.accumulators.mutable_data().begin() + offset);
    std::copy(r.ofmaps.data().begin(), r.ofmaps.data().end(),
              merged.ofmaps.mutable_data().begin() + offset);
    image += shard_batch;
  }
  CHAINNN_CHECK_MSG(image == layer.batch,
                    "shards cover " << image << " of " << layer.batch
                                    << " images");

  // Keep a single copy of the once-per-batch costs.
  merged.stats.kernel_load_cycles = shards[0].stats.kernel_load_cycles;
  merged.stats.drain_cycles = shards[0].stats.drain_cycles;
  const std::uint64_t duplicated =
      static_cast<std::uint64_t>(shards.size() - 1) * kernel_bytes;
  CHAINNN_CHECK(merged.traffic.kmemory_bytes >= duplicated &&
                merged.traffic.dram_bytes >= duplicated);
  merged.traffic.kmemory_bytes -= duplicated;
  merged.traffic.dram_bytes -= duplicated;
  return merged;
}

LayerRunResult BatchExecutor::run_layer(const nn::ConvLayerParams& layer,
                                        const Tensor<std::int16_t>& ifmaps,
                                        const Tensor<std::int16_t>& kernels,
                                        const Tensor<std::int16_t>* bias) {
  layer.validate();
  CHAINNN_CHECK(ifmaps.shape() == Shape({layer.batch, layer.in_channels,
                                         layer.in_height, layer.in_width}));

  const std::int64_t shards = std::min(cfg_.num_workers, layer.batch);
  if (shards <= 1) {
    if (!serial_acc_)
      serial_acc_ = std::make_unique<ChainAccelerator>(acc_cfg_, plan_cache_);
    return serial_acc_->run_layer(layer, ifmaps, kernels, bias);
  }

  std::vector<LayerRunResult> results(static_cast<std::size_t>(shards));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(shards));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(shards));
  const std::int64_t image_words =
      layer.in_channels * layer.in_height * layer.in_width;

  for (std::int64_t s = 0; s < shards; ++s) {
    tasks.push_back([&, s] {
      try {
        const auto [first, last] = shard_range(layer.batch, s, shards);
        nn::ConvLayerParams shard_layer = layer.with_batch(last - first);
        // Uninit: fully overwritten by the copy below; pooled so the
        // next request's identical shard slices reuse the blocks.
        Tensor<std::int16_t> slice(
            Shape{last - first, layer.in_channels, layer.in_height,
                  layer.in_width},
            Uninit{}, ArenaAllocator<std::int16_t>(acc_cfg_.arena));
        const auto src = ifmaps.data().subspan(
            static_cast<std::size_t>(first * image_words),
            static_cast<std::size_t>((last - first) * image_words));
        std::copy(src.begin(), src.end(), slice.mutable_data().begin());

        // Per-shard clone: private hierarchy, shared plan cache.
        ChainAccelerator acc(acc_cfg_, plan_cache_);
        results[static_cast<std::size_t>(s)] =
            acc.run_layer(shard_layer, slice, kernels, bias);
      } catch (...) {
        errors[static_cast<std::size_t>(s)] = std::current_exception();
      }
    });
  }
  run_tasks(tasks);
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  serve::PlanCache::Lookup lookup;
  const dataflow::ExecutionPlan plan =
      plan_cache_->plan_for(layer, acc_cfg_.array, acc_cfg_.memory, &lookup);
  LayerRunResult merged = merge_shard_results(
      plan, acc_cfg_.array.clock_hz, acc_cfg_.memory.word_bytes, results);
  // The merge plan above is a lookup of this run too — keep RunStats'
  // "hits + misses = plan lookups performed" invariant for sharded runs.
  merged.stats.plan_cache_hits += lookup.hit ? 1 : 0;
  merged.stats.plan_cache_misses += lookup.hit ? 0 : 1;
  merged.stats.plan_cache_entries =
      std::max(merged.stats.plan_cache_entries,
               static_cast<std::int64_t>(lookup.entries));
  return merged;
}

}  // namespace chainnn::chain
