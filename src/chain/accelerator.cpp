#include "chain/accelerator.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "fixed/quantize.hpp"
#include "nn/conv_kernel.hpp"
#include "nn/golden.hpp"

namespace chainnn::chain {

namespace {

// Replays the cycle-accurate controller's RunStats from the plan's closed
// forms. Every identity here is pinned against measured counts by the
// exec-mode equivalence sweep (tests/chain/test_exec_mode.cpp) on top of
// the existing closed-form tests (Accelerator.MeasuredCyclesMatchPlanClosedForm).
RunStats analytical_stats(const dataflow::ExecutionPlan& plan,
                          std::int64_t batch) {
  RunStats stats;
  stats.kernel_load_cycles = plan.kernel_load_cycles_per_batch();
  stats.stream_cycles = batch * plan.stream_cycles_per_image();
  stats.drain_cycles = plan.drain_cycles();  // overlaps streams; paid once
  stats.windows_collected = batch * plan.windows_per_image();
  // The chain MACs zero-padding taps like real ones (phases partition the
  // K x K taps), so the streamed MAC count is the nominal layer count.
  stats.macs_performed = batch * plan.layer.macs_per_image();
  stats.passes = batch * plan.passes_per_image();
  return stats;
}

// Charges the closed-form traffic of `plan` to the hierarchy so that the
// counter deltas (and any later inspection of the hierarchy totals) are
// identical to a cycle-accurate run. model_traffic's per-operand byte
// counts already equal the controller's measured charges exactly
// (Accelerator.MeasuredTrafficMatchesAnalyticModel).
void charge_analytical_traffic(const dataflow::ExecutionPlan& plan,
                               std::int64_t batch,
                               mem::MemoryHierarchy& hierarchy) {
  const std::uint64_t wb = hierarchy.config().word_bytes;
  const dataflow::LayerTrafficModel t = dataflow::model_traffic(
      plan, batch, {wb, hierarchy.config().imemory_bytes, false});
  hierarchy.imemory().read_words(t.imem_reads / wb);
  hierarchy.imemory().write_words(t.imem_writes / wb);
  hierarchy.kmemory().read_words(t.kmem_reads / wb);
  hierarchy.kmemory().write_words(t.kmem_writes / wb);
  hierarchy.omemory().read_words(t.omem_reads / wb);
  hierarchy.omemory().write_words(t.omem_writes / wb);
  hierarchy.dram().read_bytes(mem::Operand::kIfmap, t.dram_ifmap);
  hierarchy.dram().read_bytes(mem::Operand::kKernel, t.dram_kernel);
  hierarchy.dram().write_bytes(mem::Operand::kOfmap, t.dram_ofmap);
  // Psum spill between channel residencies is one write + one read back.
  hierarchy.dram().write_bytes(mem::Operand::kPsum, t.dram_psum / 2);
  hierarchy.dram().read_bytes(mem::Operand::kPsum, t.dram_psum / 2);
}

}  // namespace

double LayerRunResult::seconds() const {
  return static_cast<double>(stats.total_cycles()) / clock_hz_;
}

double LayerRunResult::achieved_ops_per_s() const {
  const double secs = seconds();
  return secs == 0.0 ? 0.0
                     : 2.0 * static_cast<double>(plan.layer.macs_total()) /
                           secs;
}

double LayerRunResult::utilization() const {
  const double cap = static_cast<double>(plan.array.num_pes) *
                     static_cast<double>(stats.total_cycles());
  return cap == 0.0 ? 0.0
                    : static_cast<double>(plan.layer.macs_total()) / cap;
}

ChainAccelerator::ChainAccelerator(const AcceleratorConfig& cfg,
                                   std::shared_ptr<serve::PlanCache> plan_cache)
    : cfg_(cfg),
      hierarchy_(cfg.memory),
      plan_cache_(plan_cache ? std::move(plan_cache)
                             : std::make_shared<serve::PlanCache>()) {}

dataflow::ExecutionPlan ChainAccelerator::plan(
    const nn::ConvLayerParams& layer) const {
  return plan_cache_->plan_for(layer, cfg_.array, cfg_.memory);
}

LayerRunResult ChainAccelerator::run_layer(
    const nn::ConvLayerParams& layer, const Tensor<std::int16_t>& ifmaps,
    const Tensor<std::int16_t>& kernels, const Tensor<std::int16_t>* bias) {
  if (bias) CHAINNN_CHECK(bias->shape() == Shape({layer.out_channels}));

  LayerRunResult result;
  serve::PlanCache::Lookup lookup;
  result.plan = plan_cache_->plan_for(layer, cfg_.array, cfg_.memory, &lookup);
  result.clock_hz_ = cfg_.array.clock_hz;

  const mem::HierarchySnapshot before = mem::snapshot(hierarchy_);
  nn::ConvDispatch dispatch;
  bool dispatched = false;
  if (cfg_.exec_mode == ExecMode::kAnalytical) {
    // Fast path: the golden fixed-point model produces the exact
    // accumulator surface the chain would (it is the oracle the
    // cycle-accurate datapath is verified against), and the plan's closed
    // forms reproduce the controller's cycle and traffic accounting.
    CHAINNN_CHECK(ifmaps.shape() == Shape({layer.batch, layer.in_channels,
                                           layer.in_height, layer.in_width}));
    CHAINNN_CHECK(kernels.shape() ==
                  Shape({layer.out_channels, layer.channels_per_group(),
                         layer.kernel, layer.kernel}));
    if (cfg_.psum_storage == PsumStorage::kWide) {
      result.accumulators = nn::conv2d_fixed_accum_dispatch(
          layer, ifmaps, kernels, &dispatch,
          ArenaAllocator<std::int64_t>(cfg_.arena));
      dispatched = true;
    } else {
      result.accumulators =
          staged_reference(cfg_, result.plan, ifmaps, kernels);
    }
    result.stats = analytical_stats(result.plan, layer.batch);
    charge_analytical_traffic(result.plan, layer.batch, hierarchy_);
  } else {
    LayerController controller(cfg_, result.plan, hierarchy_);
    result.accumulators = controller.run(ifmaps, kernels, result.stats);
  }
  // Host-side bookkeeping, set after the engines so the analytical path's
  // wholesale stats replacement cannot drop it.
  result.stats.plan_cache_hits = lookup.hit ? 1 : 0;
  result.stats.plan_cache_misses = lookup.hit ? 0 : 1;
  result.stats.plan_cache_entries = static_cast<std::int64_t>(lookup.entries);
  if (dispatched) {
    result.stats.kernel_fast_dispatches = dispatch.fast ? 1 : 0;
    result.stats.kernel_scalar_dispatches = dispatch.fast ? 0 : 1;
  }
  result.traffic = mem::traffic_since(hierarchy_, before, layer.name);

  // Requantize to 16-bit ofmaps. Uninit: the loop below writes every
  // element; pooled so repeated layer shapes reuse one surface.
  result.ofmaps =
      Tensor<std::int16_t>(result.accumulators.shape(), Uninit{},
                           ArenaAllocator<std::int16_t>(cfg_.arena));
  const std::int64_t plane = layer.out_height() * layer.out_width();
  const int acc_frac = cfg_.ifmap_fmt.frac_bits + cfg_.kernel_fmt.frac_bits;
  for (std::int64_t i = 0; i < result.accumulators.num_elements(); ++i) {
    const std::int64_t m = (i / plane) % layer.out_channels;
    const std::int64_t b = bias ? bias->at_flat(m) : 0;
    if (cfg_.psum_storage == PsumStorage::kWide) {
      std::int64_t acc = result.accumulators.at_flat(i);
      if (bias) {
        const int align = acc_frac - cfg_.ofmap_fmt.frac_bits;
        acc += fixed::shift_right_rounded(b, -align, cfg_.rounding);
      }
      result.ofmaps.at_flat(i) = fixed::narrow_to_fixed16(
          acc, acc_frac, cfg_.ofmap_fmt, cfg_.rounding,
          fixed::Overflow::kSaturate, &result.narrowing);
    } else {
      // Staged partials carry psum_fmt fraction bits.
      const std::int64_t partial = result.accumulators.at_flat(i);
      result.ofmaps.at_flat(i) = fixed::narrow_to_fixed16(
          partial + fixed::shift_right_rounded(
                        b, cfg_.ofmap_fmt.frac_bits - cfg_.psum_fmt.frac_bits,
                        cfg_.rounding),
          cfg_.psum_fmt.frac_bits, cfg_.ofmap_fmt, cfg_.rounding,
          fixed::Overflow::kSaturate, &result.narrowing);
    }
  }
  return result;
}

ChainAccelerator::FloatRunResult ChainAccelerator::run_layer_float(
    const nn::ConvLayerParams& layer, const Tensor<float>& ifmaps,
    const Tensor<float>& kernels, fixed::NarrowingStats* quantization) {
  const auto xq = fixed::quantize(ifmaps.data(), cfg_.ifmap_fmt,
                                  cfg_.rounding);
  const auto wq = fixed::quantize(kernels.data(), cfg_.kernel_fmt,
                                  cfg_.rounding);
  if (quantization) {
    quantization->merge(xq.stats);
    quantization->merge(wq.stats);
  }
  FloatRunResult out;
  out.raw = run_layer(layer, Tensor<std::int16_t>(ifmaps.shape(), xq.raw),
                      Tensor<std::int16_t>(kernels.shape(), wq.raw));
  out.ofmaps = Tensor<float>(out.raw.ofmaps.shape());
  const double scale = cfg_.ofmap_fmt.scale();
  for (std::int64_t i = 0; i < out.raw.ofmaps.num_elements(); ++i)
    out.ofmaps.at_flat(i) = static_cast<float>(
        static_cast<double>(out.raw.ofmaps.at_flat(i)) / scale);
  return out;
}

Tensor<std::int64_t> staged_reference(const AcceleratorConfig& cfg,
                                      const dataflow::ExecutionPlan& plan,
                                      const Tensor<std::int16_t>& ifmaps,
                                      const Tensor<std::int16_t>& kernels) {
  const nn::ConvLayerParams& layer = plan.layer;
  layer.validate();
  const int acc_frac = cfg.ifmap_fmt.frac_bits + cfg.kernel_fmt.frac_bits;
  const std::int64_t e_h = layer.out_height();
  const std::int64_t e_w = layer.out_width();
  Tensor<std::int64_t> partials(
      Shape{layer.batch, layer.out_channels, e_h, e_w});

  const std::int64_t m_per_g = layer.out_channels_per_group();
  const std::int64_t cg = layer.channels_per_group();
  const std::int64_t h = layer.in_height;
  const std::int64_t w = layer.in_width;
  const std::int64_t k = layer.kernel;
  const std::int64_t s = layer.stride;
  const std::int64_t pr = layer.pad_rows();
  const std::int64_t pc = layer.pad_cols();

  // Raw-pointer loop nest in the conv2d_fixed_accum style (this is the
  // kStaged16 analytical hot path). The pass order over each output site
  // must match the controller — c_tile, then phase, then channel within
  // the tile — with a 16-bit narrow + saturating staged add per pass, so
  // the passes run as the outer loops and the sites stream through the
  // partial plane. The padding tests are hoisted out of the tap loops as
  // phase-tap range bounds: tap sky reads input row by + s*sky, so the
  // valid taps form the contiguous range [sky_lo, sky_hi).
  const std::int16_t* x = ifmaps.data().data();
  const std::int16_t* ker = kernels.data().data();
  std::int64_t* out = partials.mutable_data().data();
  for (std::int64_t n = 0; n < layer.batch; ++n) {
    const std::int16_t* xn = x + n * layer.in_channels * h * w;
    for (std::int64_t m = 0; m < layer.out_channels; ++m) {
      const std::int16_t* xg = xn + (m / m_per_g) * cg * h * w;
      const std::int16_t* wm = ker + m * cg * k * k;
      std::int64_t* plane = out + (n * layer.out_channels + m) * e_h * e_w;
      for (std::int64_t ct = 0; ct < plan.c_tiles; ++ct) {
        const std::int64_t c_base = ct * plan.c_tile;
        const std::int64_t c_limit = std::min(plan.c_tile, cg - c_base);
        for (const dataflow::SubConvPlan& sp : plan.subconvs) {
          const std::int64_t a = sp.sub.phase_row;
          const std::int64_t b = sp.sub.phase_col;
          const std::int64_t kr = sp.sub.kernel_rows;
          const std::int64_t kc = sp.sub.kernel_cols;
          for (std::int64_t cl = 0; cl < c_limit; ++cl) {
            const std::int64_t c = c_base + cl;
            const std::int16_t* xc = xg + c * h * w;
            const std::int16_t* wc = wm + c * k * k;
            for (std::int64_t oy = 0; oy < e_h; ++oy) {
              const std::int64_t by = oy * s + a - pr;
              const std::int64_t sky_lo = by >= 0 ? 0 : (-by + s - 1) / s;
              const std::int64_t sky_hi =
                  by >= h ? 0 : std::min(kr, (h - by + s - 1) / s);
              std::int64_t* prow = plane + oy * e_w;
              for (std::int64_t ox = 0; ox < e_w; ++ox) {
                const std::int64_t bx = ox * s + b - pc;
                const std::int64_t skx_lo =
                    bx >= 0 ? 0 : (-bx + s - 1) / s;
                const std::int64_t skx_hi =
                    bx >= w ? 0 : std::min(kc, (w - bx + s - 1) / s);
                std::int64_t psum = 0;
                for (std::int64_t sky = sky_lo; sky < sky_hi; ++sky) {
                  // Row-start pointers only (bx may be negative; the
                  // skx_lo bound keeps every formed index in range, and
                  // forming a pointer before the buffer would be UB).
                  const std::int16_t* xrow = xc + (by + s * sky) * w;
                  const std::int16_t* wrow = wc + (a + s * sky) * k;
                  for (std::int64_t skx = skx_lo; skx < skx_hi; ++skx)
                    psum += static_cast<std::int64_t>(xrow[bx + s * skx]) *
                            static_cast<std::int64_t>(wrow[b + s * skx]);
                }
                // One staged accumulation per pass, even for all-padding
                // windows (the hardware still cycles the accumulator).
                const std::int16_t narrowed = fixed::narrow_to_fixed16(
                    psum, acc_frac, cfg.psum_fmt, cfg.rounding,
                    fixed::Overflow::kSaturate);
                prow[ox] = std::clamp<std::int64_t>(prow[ox] + narrowed,
                                                    -32768, 32767);
              }
            }
          }
        }
      }
    }
  }
  return partials;
}

}  // namespace chainnn::chain
