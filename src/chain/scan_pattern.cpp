#include "chain/scan_pattern.hpp"

#include <algorithm>

namespace chainnn::chain {

namespace {

// Floor division for possibly-negative numerators.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

}  // namespace

StripPattern::StripPattern(std::int64_t k_rows, std::int64_t k_cols,
                           std::int64_t strip_rows, std::int64_t cols,
                           std::int64_t out_rows, bool dual_channel)
    : k_rows_(k_rows),
      k_cols_(k_cols),
      strip_rows_(strip_rows),
      cols_(cols),
      out_rows_(out_rows),
      dual_channel_(dual_channel) {
  CHAINNN_CHECK(k_rows_ >= 1 && k_cols_ >= 1);
  CHAINNN_CHECK(cols_ >= k_cols_);
  CHAINNN_CHECK(out_rows_ >= 1 && out_rows_ <= k_rows_);
  CHAINNN_CHECK_MSG(strip_rows_ == out_rows_ + k_rows_ - 1,
                    "strip rows " << strip_rows_ << " vs out "
                                  << out_rows_ << " + K_r-1");
  if (dual_channel_) {
    // Last pixel (strip_rows-1, cols-1) enters at K_r*(cols-1) +
    // strip_rows - 1.
    num_slots_ = k_rows_ * (cols_ - 1) + strip_rows_;
  } else {
    // One K_r*cols sub-pattern per output row.
    num_slots_ = out_rows_ * k_rows_ * cols_;
  }
}

std::optional<ScheduledPixel> StripPattern::pixel_at(std::int64_t slot,
                                                     int channel) const {
  if (slot < 0 || slot >= num_slots_) return std::nullopt;
  if (dual_channel_) {
    // Candidates c with slot - K_r*c in [0, strip_rows): since
    // strip_rows <= 2*K_r - 1 there are at most two, of opposite parity,
    // so at most one per channel.
    const std::int64_t c_hi = slot / k_rows_;
    for (std::int64_t c = c_hi;
         c >= 0 && slot - k_rows_ * c < strip_rows_; --c) {
      if (c >= cols_) continue;
      if (static_cast<int>(c % 2) != channel) continue;
      return ScheduledPixel{slot, channel, slot - k_rows_ * c, c};
    }
    return std::nullopt;
  }
  if (channel != 0) return std::nullopt;
  const std::int64_t sub_len = k_rows_ * cols_;
  const std::int64_t r0 = slot / sub_len;
  const std::int64_t local = slot - r0 * sub_len;
  const std::int64_t c = local / k_rows_;
  const std::int64_t r = r0 + local % k_rows_;
  if (r >= strip_rows_) return std::nullopt;  // cannot happen; guard anyway
  return ScheduledPixel{slot, 0, r, c};
}

std::vector<ScheduledPixel> StripPattern::schedule() const {
  std::vector<ScheduledPixel> out;
  for (std::int64_t slot = 0; slot < num_slots_; ++slot)
    for (int ch = 0; ch < 2; ++ch)
      if (auto px = pixel_at(slot, ch)) out.push_back(*px);
  return out;
}

std::optional<WindowCompletion> StripPattern::completion_at(
    std::int64_t slot) const {
  if (slot < 0) return std::nullopt;  // still in warm-up
  const std::int64_t t = taps();
  if (dual_channel_) {
    const std::int64_t v = slot - (t - 1);
    if (v < 0) return std::nullopt;
    const std::int64_t r0 = v % k_rows_;
    const std::int64_t c0 = v / k_rows_;
    if (r0 >= out_rows_ || c0 > cols_ - k_cols_) return std::nullopt;
    return WindowCompletion{slot, r0, c0};
  }
  const std::int64_t sub_len = k_rows_ * cols_;
  const std::int64_t r0 = slot / sub_len;
  if (r0 >= out_rows_) return std::nullopt;
  const std::int64_t v = slot - r0 * sub_len - (t - 1);
  if (v < 0 || v % k_rows_ != 0) return std::nullopt;
  const std::int64_t c0 = v / k_rows_;
  if (c0 > cols_ - k_cols_) return std::nullopt;
  return WindowCompletion{slot, r0, c0};
}

std::vector<WindowCompletion> StripPattern::completions() const {
  std::vector<WindowCompletion> out;
  for (std::int64_t slot = 0; slot < num_slots_; ++slot)
    if (auto w = completion_at(slot)) out.push_back(*w);
  return out;
}

int StripPattern::mux_select(std::int64_t p, std::int64_t slot) const {
  if (!dual_channel_) return 0;
  const std::int64_t t_sub = taps();
  if (p >= t_sub) return 0;  // masked tail PEs never feed real MACs
  // PE p serves window t = slot - p at scan position s = T-1-p; the
  // pixel it needs sits in window column c0 + s/K_r, whose strip-column
  // parity picks the channel. In hardware this is a per-PE counter of
  // period 2*K_r; here the closed form.
  const std::int64_t s = t_sub - 1 - p;
  const std::int64_t t = slot - p;
  const std::int64_t c0 = floor_div(t - (t_sub - 1), k_rows_);
  const std::int64_t dc = s / k_rows_;
  return static_cast<int>(((c0 + dc) % 2 + 2) % 2);
}

}  // namespace chainnn::chain
