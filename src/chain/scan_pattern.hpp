// The column-wise scan input pattern (§IV.C, Fig. 5(b)), generalized to
// rectangular K_r x K_c kernels and partial strips.
//
// A strip streams `strip_rows` rows of a (decimated, padded) ifmap
// channel, column-major, such that strip pixel (r, c) enters the chain at
// slot
//
//     tau(r, c) = K_r * c + r
//
// on channel (c mod 2) — even strip columns ride channel 0, odd columns
// channel 1 (for K = 3 this reproduces the timestamps printed in the
// paper's Fig. 5(b) exactly, offset by 1 because the paper counts from 1).
//
// The sliding-window property: scan position s of window (r0, c0) is the
// pixel (r0 + s mod K_r, c0 + s div K_r), which by the formula above
// arrives at slot
//
//     t(r0, c0) - (T - 1) + s,   with  t(r0, c0) = K_r*c0 + r0 + T - 1
//
// and T = K_r*K_c. So after a T-slot warm-up, each slot completes exactly
// one window: the last T operands seen by a primitive are always a valid
// window in column-wise scan order. Each PE's multiplexer alternates
// between the channels with period 2*K_r depending on the parity of the
// window column its scan position reads — see mux_select().
//
// The single-channel variant (Fig. 5(a)) streams one output row at a
// time (rows [r0, r0+K_r-1], tau = K_r*c + (r - r0), all on channel 0):
// windows then complete every K_r slots — the 1/K utilization the paper
// uses to motivate the dual-channel PE.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace chainnn::chain {

// One pixel scheduled on a channel at a slot, in strip-local coordinates.
struct ScheduledPixel {
  std::int64_t slot = 0;
  int channel = 0;          // 0 = OddIF (even strip columns), 1 = EvenIF
  std::int64_t row = 0;     // strip-local row
  std::int64_t col = 0;     // strip-local column
};

// A window completion: at `slot`, the window with top row `r0` (strip-
// local) and left column `c0` finishes (its psum leaves the primitive
// T + pipeline cycles later; the pattern works in stream slots).
struct WindowCompletion {
  std::int64_t slot = 0;
  std::int64_t r0 = 0;
  std::int64_t c0 = 0;
};

// The pattern for one strip of one (sub-)convolution.
class StripPattern {
 public:
  // `k_rows`/`k_cols`: kernel extent; `strip_rows`: rows streamed (=
  // out_rows + k_rows - 1, at most 2*k_rows - 1); `cols`: strip width;
  // `out_rows`: valid window top rows (<= k_rows); `dual_channel`:
  // selects the Fig. 5(b) dual-channel pattern vs the Fig. 5(a) single-
  // channel one.
  StripPattern(std::int64_t k_rows, std::int64_t k_cols,
               std::int64_t strip_rows, std::int64_t cols,
               std::int64_t out_rows, bool dual_channel);

  [[nodiscard]] std::int64_t k_rows() const { return k_rows_; }
  [[nodiscard]] std::int64_t k_cols() const { return k_cols_; }
  [[nodiscard]] std::int64_t taps() const { return k_rows_ * k_cols_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t out_rows() const { return out_rows_; }
  [[nodiscard]] bool dual_channel() const { return dual_channel_; }

  // Total stream slots for the strip (the per-pass cycle cost).
  [[nodiscard]] std::int64_t num_slots() const { return num_slots_; }

  // Pixel (if any) entering `channel` at `slot`.
  [[nodiscard]] std::optional<ScheduledPixel> pixel_at(
      std::int64_t slot, int channel) const;

  // All scheduled pixels, slot-ordered (for tests and the streamer).
  [[nodiscard]] std::vector<ScheduledPixel> schedule() const;

  // All window completions, slot-ordered.
  [[nodiscard]] std::vector<WindowCompletion> completions() const;

  // Window (if any) completing at `slot` — one per slot in steady state
  // for the dual-channel pattern.
  [[nodiscard]] std::optional<WindowCompletion> completion_at(
      std::int64_t slot) const;

  // Which channel PE position `p` (0 = nearest the stream input inside a
  // primitive of `taps_phys` >= taps() PEs) must select at stream slot
  // `slot` of the window it is then serving. This is the period-2*K_r
  // multiplexer schedule of the dual-channel PE (Fig. 6); single-channel
  // patterns always return 0.
  [[nodiscard]] int mux_select(std::int64_t p, std::int64_t slot) const;

 private:
  std::int64_t k_rows_;
  std::int64_t k_cols_;
  std::int64_t strip_rows_;
  std::int64_t cols_;
  std::int64_t out_rows_;
  bool dual_channel_;
  std::int64_t num_slots_ = 0;
};

}  // namespace chainnn::chain
