#include "chain/controller.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "dataflow/traffic.hpp"

namespace chainnn::chain {

const char* state_name(ControllerState s) {
  switch (s) {
    case ControllerState::kIdle: return "IDLE";
    case ControllerState::kLoadKernels: return "LOAD_KERNELS";
    case ControllerState::kStream: return "STREAM";
    case ControllerState::kDrain: return "DRAIN";
  }
  return "?";
}

void LayerController::enter_state(ControllerState s) {
  state_ = s;
  if (fsm_trace_.size() < kFsmTraceCap) fsm_trace_.push_back(s);
}

LayerController::LayerController(const AcceleratorConfig& cfg,
                                 const dataflow::ExecutionPlan& plan,
                                 mem::MemoryHierarchy& hierarchy)
    : cfg_(cfg),
      plan_(plan),
      hierarchy_(hierarchy),
      chain_(plan.primitives, plan.taps, plan.array.kmem_words_per_pe) {
  // Resident-kernel groups: chunks of `primitives` kernels, never mixing
  // convolution groups (resident kernels share the ifmap stream).
  const std::int64_t m_per_group = plan_.layer.out_channels_per_group();
  for (std::int64_t g = 0; g < plan_.layer.groups; ++g) {
    for (std::int64_t chunk = 0; chunk < m_per_group;
         chunk += plan_.primitives) {
      MGroup mg;
      mg.group = g;
      mg.first_m = g * m_per_group + chunk;
      mg.kernels_resident = std::min(plan_.primitives, m_per_group - chunk);
      m_groups_.push_back(mg);
    }
  }
  CHAINNN_CHECK(static_cast<std::int64_t>(m_groups_.size()) ==
                plan_.m_groups);
}

void LayerController::load_kernels_for(const MGroup& mg,
                                       std::int64_t c_tile_idx,
                                       const Tensor<std::int16_t>& kernels,
                                       RunStats& stats) {
  enter_state(ControllerState::kLoadKernels);
  const nn::ConvLayerParams& layer = plan_.layer;
  const auto n_subs = static_cast<std::int64_t>(plan_.subconvs.size());
  const std::int64_t c_base = c_tile_idx * plan_.c_tile;
  const std::int64_t c_limit =
      std::min(plan_.c_tile, layer.channels_per_group() - c_base);

  std::int64_t loads = 0;
  for (std::int64_t q = 0; q < mg.kernels_resident; ++q) {
    const std::int64_t m = mg.first_m + q;
    for (std::int64_t c_local = 0; c_local < c_limit; ++c_local) {
      const std::int64_t c_in_group = c_base + c_local;
      for (std::int64_t si = 0; si < n_subs; ++si) {
        const dataflow::SubConv& sub = plan_.subconvs[si].sub;
        const std::int64_t word = c_local * n_subs + si;
        for (std::int64_t sky = 0; sky < sub.kernel_rows; ++sky) {
          for (std::int64_t skx = 0; skx < sub.kernel_cols; ++skx) {
            const std::int64_t ky = sub.phase_row + layer.stride * sky;
            const std::int64_t kx = sub.phase_col + layer.stride * skx;
            const std::int64_t s = sky + sub.kernel_rows * skx;
            const std::int64_t p = sub.taps() - 1 - s;
            chain_.primitive(q).load_kmemory(
                p, word, kernels.at(m, c_in_group, ky, kx));
            ++loads;
          }
        }
      }
    }
  }
  stats.kernel_load_cycles += loads;  // 1 word per cycle (§V.B)
  hierarchy_.kmemory().write_words(static_cast<std::uint64_t>(loads));
  hierarchy_.dram().read_bytes(
      mem::Operand::kKernel,
      static_cast<std::uint64_t>(loads) * hierarchy_.config().word_bytes);
}

void LayerController::accumulate(Tensor<std::int64_t>& acc, std::int64_t n,
                                 std::int64_t m, std::int64_t oy,
                                 std::int64_t ox, std::int64_t psum,
                                 bool first_pass) {
  std::int64_t& slot = acc.at(n, m, oy, ox);
  if (cfg_.psum_storage == PsumStorage::kWide) {
    fixed::Accumulator48 a(slot);
    a.add(psum);
    slot = a.value();
  } else {
    // Staged 16-bit partials: narrow this pass's psum to the psum format
    // and add saturating into the stored partial.
    const int acc_frac =
        cfg_.ifmap_fmt.frac_bits + cfg_.kernel_fmt.frac_bits;
    const std::int16_t narrowed = fixed::narrow_to_fixed16(
        psum, acc_frac, cfg_.psum_fmt, cfg_.rounding,
        fixed::Overflow::kSaturate);
    std::int64_t sum = slot + narrowed;
    sum = std::clamp<std::int64_t>(sum, -32768, 32767);
    slot = sum;
  }
  hierarchy_.omemory().write_words(1);
  if (!first_pass) hierarchy_.omemory().read_words(1);
}

void LayerController::run_pass(const MGroup& mg, std::int64_t image,
                               std::int64_t sub_index,
                               const dataflow::Strip& strip,
                               std::int64_t c_abs, std::int64_t c_local,
                               const Tensor<std::int16_t>& ifmaps,
                               Tensor<std::int64_t>& acc, RunStats& stats) {
  enter_state(ControllerState::kStream);
  const nn::ConvLayerParams& layer = plan_.layer;
  const dataflow::SubConvPlan& sp = plan_.subconvs[sub_index];
  const dataflow::SubConv& sub = sp.sub;
  const auto n_subs = static_cast<std::int64_t>(plan_.subconvs.size());

  const StripPattern pattern(sub.kernel_rows, sub.kernel_cols,
                             sp.strip_rows(strip), sub.in_cols,
                             strip.out_rows, plan_.array.dual_channel);

  // Latch this pass's weights from kMemory into the MAC operand registers.
  const std::int64_t word = c_local * n_subs + sub_index;
  const std::int64_t kmem_reads = chain_.latch_weights(sub.taps(), word);
  hierarchy_.kmemory().read_words(static_cast<std::uint64_t>(kmem_reads));

  chain_.reset_pass_state();

  const std::int64_t group_first_c =
      mg.group * layer.channels_per_group();
  const bool first_pass = sub_index == 0 && c_abs == group_first_c;
  const std::int64_t taps_phys = plan_.taps;
  const std::int64_t e_h = layer.out_height();
  const std::int64_t e_w = layer.out_width();

  // Fetch one channel pixel for a scheduled slot, charging iMemory for
  // real (non-padding) pixels.
  auto fetch = [&](const std::optional<ScheduledPixel>& px) -> std::int16_t {
    if (!px) return 0;
    const std::int64_t dec_row = strip.first_out_row + px->row;
    const std::int64_t dec_col = px->col;
    const std::int64_t pr = layer.stride * dec_row + sub.phase_row;
    const std::int64_t pc = layer.stride * dec_col + sub.phase_col;
    const std::int64_t r = pr - layer.pad_rows();
    const std::int64_t c = pc - layer.pad_cols();
    if (r < 0 || r >= layer.in_height || c < 0 || c >= layer.in_width)
      return 0;  // padding, synthesized rather than read
    hierarchy_.imemory().read_words(1);
    return ifmaps.at(image, c_abs, r, c);
  };

  const std::int64_t slots = pattern.num_slots();
  for (std::int64_t slot = 0; slot < slots + taps_phys; ++slot) {
    const std::int16_t in0 = fetch(pattern.pixel_at(slot, 0));
    const std::int16_t in1 = fetch(pattern.pixel_at(slot, 1));
    chain_.step(pattern, slot, in0, in1);

    // Window t's psum commits into the last PE at the end of cycle
    // t + (T-1): PE 0 MACs at t, each later PE one cycle after.
    const auto comp = pattern.completion_at(slot - (taps_phys - 1));
    if (!comp) continue;
    const std::int64_t oy = strip.first_out_row + comp->r0;
    const std::int64_t ox = comp->c0;
    if (oy >= e_h || ox >= e_w) continue;
    for (std::int64_t q = 0; q < mg.kernels_resident; ++q) {
      accumulate(acc, image, mg.first_m + q, oy, ox, chain_.output(q),
                 first_pass);
      ++stats.windows_collected;
      stats.macs_performed += sub.taps();
    }
  }
  stats.stream_cycles += slots;  // drain overlaps the next pass's stream
  ++stats.passes;
}

Tensor<std::int64_t> LayerController::run(const Tensor<std::int16_t>& ifmaps,
                                          const Tensor<std::int16_t>& kernels,
                                          RunStats& stats) {
  const nn::ConvLayerParams& layer = plan_.layer;
  CHAINNN_CHECK(ifmaps.shape() == Shape({layer.batch, layer.in_channels,
                                         layer.in_height, layer.in_width}));
  CHAINNN_CHECK(kernels.shape() ==
                Shape({layer.out_channels, layer.channels_per_group(),
                       layer.kernel, layer.kernel}));

  Tensor<std::int64_t> acc(Shape{layer.batch, layer.out_channels,
                                 layer.out_height(), layer.out_width()});

  // DRAM ifmap fetch policy must match dataflow::model_traffic: compute
  // whether strips can be fetched once and re-streamed across m-groups.
  std::uint64_t max_strip_bytes = 0;
  for (const dataflow::SubConvPlan& sp : plan_.subconvs)
    for (const dataflow::Strip& strip : sp.strips)
      max_strip_bytes = std::max(
          max_strip_bytes,
          static_cast<std::uint64_t>(dataflow::strip_real_pixels(
              layer, sp.sub, strip)) *
              hierarchy_.config().word_bytes);
  const bool fetch_once = plan_.all_kernels_resident &&
                          max_strip_bytes * 2 <=
                              hierarchy_.config().imemory_bytes;

  const std::int64_t e_h = layer.out_height();
  const auto wb = hierarchy_.config().word_bytes;

  bool first_mgroup = true;
  for (const MGroup& mg : m_groups_) {
    for (std::int64_t ct = 0; ct < plan_.c_tiles; ++ct) {
      load_kernels_for(mg, ct, kernels, stats);
      const std::int64_t c_base = ct * plan_.c_tile;
      const std::int64_t c_limit =
          std::min(plan_.c_tile, layer.channels_per_group() - c_base);

      for (std::int64_t n = 0; n < layer.batch; ++n) {
        // Walk output rows in oMemory-resident blocks; within a block,
        // every phase's strips then every channel of the tile.
        for (std::int64_t b = 0; b < e_h; b += plan_.row_block) {
          const std::int64_t b_end = std::min(b + plan_.row_block, e_h);
          // The block's partials live in oMemory until every (phase,
          // channel) pass has accumulated; enforce the capacity the plan
          // promised.
          const std::uint64_t block_bytes =
              static_cast<std::uint64_t>(mg.kernels_resident) *
              static_cast<std::uint64_t>(b_end - b) *
              static_cast<std::uint64_t>(layer.out_width()) * wb;
          hierarchy_.omemory().reserve(block_bytes);
          const auto n_subs =
              static_cast<std::int64_t>(plan_.subconvs.size());
          for (std::int64_t si = 0; si < n_subs; ++si) {
            for (const dataflow::Strip& strip : plan_.subconvs[si].strips) {
              if (strip.first_out_row < b || strip.first_out_row >= b_end)
                continue;
              for (std::int64_t cl = 0; cl < c_limit; ++cl) {
                const std::int64_t c_abs =
                    mg.group * layer.channels_per_group() + c_base + cl;
                if (!fetch_once || first_mgroup) {
                  const auto bytes = static_cast<std::uint64_t>(
                                         dataflow::strip_real_pixels(
                                             layer, plan_.subconvs[si].sub,
                                             strip)) *
                                     wb;
                  hierarchy_.dram().read_bytes(mem::Operand::kIfmap, bytes);
                  hierarchy_.imemory().write_words(bytes / wb);
                }
                run_pass(mg, n, si, strip, c_abs, cl, ifmaps, acc, stats);
              }
            }
          }
          hierarchy_.omemory().release(block_bytes);
        }
        // Psum spill between channel residencies (c_tiles > 1).
        if (plan_.c_tiles > 1 && ct + 1 < plan_.c_tiles) {
          const auto spill =
              static_cast<std::uint64_t>(mg.kernels_resident) *
              static_cast<std::uint64_t>(e_h) *
              static_cast<std::uint64_t>(layer.out_width()) * wb;
          hierarchy_.dram().write_bytes(mem::Operand::kPsum, spill);
          hierarchy_.dram().read_bytes(mem::Operand::kPsum, spill);
        }
      }
    }
    first_mgroup = false;
  }

  // Final ofmap writeback.
  hierarchy_.dram().write_bytes(
      mem::Operand::kOfmap,
      static_cast<std::uint64_t>(layer.ofmap_pixels_per_image()) *
          static_cast<std::uint64_t>(layer.batch) * wb);

  enter_state(ControllerState::kDrain);
  stats.drain_cycles = plan_.drain_cycles();
  enter_state(ControllerState::kIdle);
  return acc;
}

}  // namespace chainnn::chain
