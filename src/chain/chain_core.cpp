#include "chain/chain_core.hpp"

namespace chainnn::chain {

ChannelRing::ChannelRing(std::int64_t max_age)
    : buf_(static_cast<std::size_t>(max_age + 1), 0) {
  CHAINNN_CHECK(max_age >= 0);
}

void ChannelRing::push(std::int16_t v) {
  head_ = (head_ + 1) % static_cast<std::int64_t>(buf_.size());
  buf_[static_cast<std::size_t>(head_)] = v;
  ++pushed_;
}

std::int16_t ChannelRing::tap(std::int64_t age) const {
  CHAINNN_CHECK_MSG(age >= 0 &&
                        age < static_cast<std::int64_t>(buf_.size()),
                    "tap age " << age << " of ring " << buf_.size());
  if (age >= pushed_) return 0;  // register still holding its reset value
  const auto n = static_cast<std::int64_t>(buf_.size());
  return buf_[static_cast<std::size_t>((head_ - age % n + n) % n)];
}

void ChannelRing::reset() {
  std::fill(buf_.begin(), buf_.end(), 0);
  head_ = 0;
  pushed_ = 0;
}

SystolicPrimitive::SystolicPrimitive(std::int64_t taps_phys,
                                     std::int64_t kmem_words_per_pe)
    : pes_(static_cast<std::size_t>(taps_phys)) {
  CHAINNN_CHECK(taps_phys >= 1);
  for (Pe& pe : pes_)
    pe.kmemory.assign(static_cast<std::size_t>(kmem_words_per_pe), 0);
}

void SystolicPrimitive::load_kmemory(std::int64_t p, std::int64_t word,
                                     std::int16_t w) {
  CHAINNN_CHECK(p >= 0 && p < taps_phys());
  auto& mem = pes_[static_cast<std::size_t>(p)].kmemory;
  CHAINNN_CHECK_MSG(word >= 0 &&
                        word < static_cast<std::int64_t>(mem.size()),
                    "kMemory word " << word << " of " << mem.size());
  mem[static_cast<std::size_t>(word)] = w;
}

std::int64_t SystolicPrimitive::latch_weights(std::int64_t taps_used,
                                              std::int64_t word) {
  CHAINNN_CHECK(taps_used >= 1 && taps_used <= taps_phys());
  std::int64_t reads = 0;
  for (std::int64_t p = 0; p < taps_phys(); ++p) {
    Pe& pe = pes_[static_cast<std::size_t>(p)];
    if (p < taps_used) {
      CHAINNN_CHECK(word < static_cast<std::int64_t>(pe.kmemory.size()));
      pe.weight = pe.kmemory[static_cast<std::size_t>(word)];
      ++reads;
    } else {
      pe.weight = 0;  // masked tail taps contribute nothing
    }
  }
  return reads;
}

void SystolicPrimitive::compute(const StripPattern& pattern,
                                std::int64_t slot, const ChannelRing& ch0,
                                const ChannelRing& ch1) {
  for (std::int64_t p = 0; p < taps_phys(); ++p) {
    Pe& pe = pes_[static_cast<std::size_t>(p)];
    const int sel = pattern.mux_select(p, slot);
    const std::int16_t x = (sel == 0 ? ch0 : ch1).tap(2 * p);
    const auto prod = static_cast<std::int64_t>(
        fixed::Fixed16::multiply(fixed::Fixed16(x), fixed::Fixed16(pe.weight)));
    const std::int64_t upstream =
        p == 0 ? 0 : pes_[static_cast<std::size_t>(p - 1)].psum;
    pe.psum_next = upstream + prod;
  }
}

void SystolicPrimitive::commit() {
  for (Pe& pe : pes_) pe.psum = pe.psum_next;
}

void SystolicPrimitive::reset_psums() {
  for (Pe& pe : pes_) {
    pe.psum = 0;
    pe.psum_next = 0;
  }
}

SystolicChain::SystolicChain(std::int64_t primitives, std::int64_t taps_phys,
                             std::int64_t kmem_words_per_pe)
    : ch0_(2 * taps_phys + 2), ch1_(2 * taps_phys + 2) {
  CHAINNN_CHECK(primitives >= 1);
  prims_.reserve(static_cast<std::size_t>(primitives));
  for (std::int64_t q = 0; q < primitives; ++q)
    prims_.emplace_back(taps_phys, kmem_words_per_pe);
}

std::int64_t SystolicChain::latch_weights(std::int64_t taps_used,
                                          std::int64_t word) {
  std::int64_t reads = 0;
  for (SystolicPrimitive& prim : prims_)
    reads += prim.latch_weights(taps_used, word);
  return reads;
}

void SystolicChain::step(const StripPattern& pattern, std::int64_t slot,
                         std::int16_t in0, std::int16_t in1) {
  ch0_.push(in0);
  ch1_.push(in1);
  for (SystolicPrimitive& prim : prims_)
    prim.compute(pattern, slot, ch0_, ch1_);
  for (SystolicPrimitive& prim : prims_) prim.commit();
}

void SystolicChain::reset_pass_state() {
  ch0_.reset();
  ch1_.reset();
  for (SystolicPrimitive& prim : prims_) prim.reset_psums();
}

}  // namespace chainnn::chain
