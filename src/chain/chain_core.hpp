// Register-level model of the 1D chain (§IV.A-C).
//
// Microarchitecture modelled per PE (Fig. 6):
//   * two ifmap forwarding channels (OddIF / EvenIF), two registers per
//     PE per channel — the retimed ("vertical cuts", §IV.B) pipeline
//     needs the data path two-slow relative to the psum path;
//   * a multiplexer selecting which channel feeds the MAC each cycle
//     (period-2*K_r schedule, see StripPattern::mux_select);
//   * a kMemory register-file slice holding the PE's stationary weights
//     (one word per resident kernel x channel x phase), plus the active
//     weight register feeding the multiplier;
//   * a 16x16 multiplier and 48-bit psum adder, one psum register per PE.
//
// Simulation note: primitive q's computation is identical to primitive
// 0's delayed by 2*q*T cycles (its channel taps sit 2*q*T registers
// deeper). The simulator evaluates all primitives phase-aligned — the
// outputs are the same values and the constant chain delay is charged
// analytically (ExecutionPlan::drain_cycles) — which keeps the per-cycle
// work at O(active PEs) with a short tap history instead of a
// 2*576-deep one.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/scan_pattern.hpp"
#include "common/check.hpp"
#include "fixed/fixed16.hpp"

namespace chainnn::chain {

// History of values entering one ifmap channel, supporting taps at fixed
// register depths (age 2p for PE position p).
class ChannelRing {
 public:
  explicit ChannelRing(std::int64_t max_age);

  // Pushes the value entering the channel this cycle.
  void push(std::int16_t v);

  // Value that entered `age` cycles ago (age 0 = this cycle's input).
  [[nodiscard]] std::int16_t tap(std::int64_t age) const;

  void reset();

 private:
  std::vector<std::int16_t> buf_;
  std::int64_t head_ = 0;      // index of the most recent entry
  std::int64_t pushed_ = 0;    // total values pushed
};

// One dual-channel PE: stationary-weight MAC stage of a primitive.
struct Pe {
  // kMemory slice: one word per (channel-in-tile x phase); index
  // c_local * n_subs + sub.
  std::vector<std::int16_t> kmemory;
  std::int16_t weight = 0;     // active weight register (kernel operand)
  std::int64_t psum = 0;       // psum register (48-bit in hardware)
  std::int64_t psum_next = 0;
};

// A group of `taps_phys` adjacent PEs computing one 2D convolution as a
// 1D systolic pipeline (§IV.B). Sub-kernels with fewer taps than
// taps_phys use a prefix of the PEs; the rest carry zero weights.
class SystolicPrimitive {
 public:
  SystolicPrimitive(std::int64_t taps_phys, std::int64_t kmem_words_per_pe);

  [[nodiscard]] std::int64_t taps_phys() const {
    return static_cast<std::int64_t>(pes_.size());
  }
  [[nodiscard]] Pe& pe(std::int64_t p) { return pes_[p]; }
  [[nodiscard]] const Pe& pe(std::int64_t p) const { return pes_[p]; }

  // Writes `w` into PE p's kMemory word `word` (kernel loading).
  void load_kmemory(std::int64_t p, std::int64_t word, std::int16_t w);

  // Latches weights for a pass: PE p (p < taps_used) reads its kMemory
  // word `word`; the remaining PEs get weight 0. Returns the number of
  // kMemory reads performed.
  std::int64_t latch_weights(std::int64_t taps_used, std::int64_t word);

  // Compute phase of one cycle: every PE forms
  //   psum_next[p] = (p == 0 ? 0 : psum[p-1]) + weight[p] * x[p]
  // with x[p] taken from the channel selected by the pattern's mux
  // schedule at register depth 2p.
  void compute(const StripPattern& pattern, std::int64_t slot,
               const ChannelRing& ch0, const ChannelRing& ch1);

  // Commit phase: psum registers advance.
  void commit();

  // Psum leaving the last PE (after step(slot) it holds window
  // t = slot - (taps_phys - 1); the caller decodes validity via
  // StripPattern::completion_at).
  [[nodiscard]] std::int64_t output() const { return pes_.back().psum; }

  void reset_psums();

 private:
  std::vector<Pe> pes_;
};

// The full chain: two shared ifmap channels plus P primitives evaluated
// phase-aligned (see header comment).
class SystolicChain {
 public:
  SystolicChain(std::int64_t primitives, std::int64_t taps_phys,
                std::int64_t kmem_words_per_pe);

  [[nodiscard]] std::int64_t num_primitives() const {
    return static_cast<std::int64_t>(prims_.size());
  }
  [[nodiscard]] SystolicPrimitive& primitive(std::int64_t q) {
    return prims_[q];
  }

  // Latches pass weights in every primitive; returns total kMemory reads.
  std::int64_t latch_weights(std::int64_t taps_used, std::int64_t word);

  // Advances one cycle: pushes the two channel inputs, computes and
  // commits every primitive. `slot` is the pass-local stream slot.
  void step(const StripPattern& pattern, std::int64_t slot, std::int16_t in0,
            std::int16_t in1);

  // Output of primitive q this cycle.
  [[nodiscard]] std::int64_t output(std::int64_t q) const {
    return prims_[q].output();
  }

  // Clears channel history and psums (between passes).
  void reset_pass_state();

 private:
  std::vector<SystolicPrimitive> prims_;
  ChannelRing ch0_;
  ChannelRing ch1_;
};

}  // namespace chainnn::chain
