#include "chain/pass_dump.hpp"

#include "chain/chain_core.hpp"
#include "common/check.hpp"
#include "sim/vcd.hpp"

namespace chainnn::chain {

std::string dump_pass_vcd(const StripPattern& pattern,
                          const Tensor<std::int16_t>& strip,
                          const Tensor<std::int16_t>& kernel) {
  CHAINNN_CHECK(strip.shape().rank() == 2);
  CHAINNN_CHECK(kernel.shape() ==
                Shape({pattern.k_rows(), pattern.k_cols()}));
  const std::int64_t taps = pattern.taps();

  SystolicChain chain(1, taps, 1);
  for (std::int64_t p = 0; p < taps; ++p) {
    const std::int64_t s = taps - 1 - p;
    chain.primitive(0).load_kmemory(
        p, 0, kernel.at(s % pattern.k_rows(), s / pattern.k_rows()));
  }
  (void)chain.latch_weights(taps, 0);

  sim::VcdWriter vcd;
  const auto ch0 = vcd.add_signal("streamer", "ch0_in", 16);
  const auto ch1 = vcd.add_signal("streamer", "ch1_in", 16);
  std::vector<std::int64_t> sel_ids;
  for (std::int64_t p = 0; p < taps; ++p)
    sel_ids.push_back(
        vcd.add_signal("pe" + std::to_string(p), "sel", 1));
  const auto psum = vcd.add_signal("primitive", "psum_out", 48);
  const auto valid = vcd.add_signal("primitive", "window_valid", 1);

  auto fetch = [&](const std::optional<ScheduledPixel>& px) -> std::int16_t {
    if (!px) return 0;
    if (px->row >= strip.shape().dim(0) || px->col >= strip.shape().dim(1))
      return 0;
    return strip.at(px->row, px->col);
  };

  for (std::int64_t slot = 0; slot < pattern.num_slots() + taps; ++slot) {
    const std::int16_t in0 = fetch(pattern.pixel_at(slot, 0));
    const std::int16_t in1 = fetch(pattern.pixel_at(slot, 1));
    chain.step(pattern, slot, in0, in1);
    vcd.change(slot, ch0, static_cast<std::uint16_t>(in0));
    vcd.change(slot, ch1, static_cast<std::uint16_t>(in1));
    for (std::int64_t p = 0; p < taps; ++p)
      vcd.change(slot, sel_ids[static_cast<std::size_t>(p)],
                 pattern.mux_select(p, slot));
    vcd.change(slot, psum, chain.output(0));
    vcd.change(slot, valid,
               pattern.completion_at(slot - (taps - 1)).has_value() ? 1
                                                                    : 0);
  }
  return vcd.render();
}

}  // namespace chainnn::chain
