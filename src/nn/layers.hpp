// Auxiliary layers (ReLU, max/avg pooling, local response normalization)
// needed to run whole networks end-to-end between the accelerated
// convolutions. The paper offloads only convolutions to Chain-NN; these
// host-side layers let the examples execute real network pipelines.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace chainnn::nn {

struct PoolParams {
  std::int64_t window = 2;
  std::int64_t stride = 2;
  std::int64_t pad = 0;

  [[nodiscard]] std::int64_t out_size(std::int64_t in) const {
    return (in + 2 * pad - window) / stride + 1;
  }
};

// Elementwise max(0, x), in place.
void relu_inplace(Tensor<float>& t);
void relu_inplace(Tensor<std::int16_t>& t);

// Max pooling over {N, C, H, W}; padding positions are treated as -inf.
[[nodiscard]] Tensor<float> max_pool(const Tensor<float>& in,
                                     const PoolParams& p);
[[nodiscard]] Tensor<std::int16_t> max_pool(const Tensor<std::int16_t>& in,
                                            const PoolParams& p);

// Average pooling (padding contributes zero, divisor is window area).
[[nodiscard]] Tensor<float> avg_pool(const Tensor<float>& in,
                                     const PoolParams& p);

// AlexNet-style local response normalization across channels.
[[nodiscard]] Tensor<float> lrn_across_channels(const Tensor<float>& in,
                                                std::int64_t local_size,
                                                double alpha, double beta,
                                                double k);

}  // namespace chainnn::nn
