#include "nn/im2col.hpp"

#include "common/check.hpp"

namespace chainnn::nn {

Tensor<float> im2col_image(const ConvLayerParams& p,
                           const Tensor<float>& ifmaps, std::int64_t n,
                           std::int64_t group) {
  p.validate();
  const std::int64_t cg = p.channels_per_group();
  const std::int64_t eh = p.out_height();
  const std::int64_t ew = p.out_width();
  Tensor<float> cols(Shape{cg * p.kernel * p.kernel, eh * ew});

  for (std::int64_t c = 0; c < cg; ++c) {
    const std::int64_t ic = group * cg + c;
    for (std::int64_t ky = 0; ky < p.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < p.kernel; ++kx) {
        const std::int64_t row = (c * p.kernel + ky) * p.kernel + kx;
        for (std::int64_t oy = 0; oy < eh; ++oy) {
          const std::int64_t iy = oy * p.stride + ky - p.pad_rows();
          for (std::int64_t ox = 0; ox < ew; ++ox) {
            const std::int64_t ix = ox * p.stride + kx - p.pad_cols();
            float v = 0.0f;
            if (iy >= 0 && iy < p.in_height && ix >= 0 && ix < p.in_width)
              v = ifmaps.at(n, ic, iy, ix);
            cols.at(row, oy * ew + ox) = v;
          }
        }
      }
    }
  }
  return cols;
}

Tensor<float> conv2d_im2col(const ConvLayerParams& p,
                            const Tensor<float>& ifmaps,
                            const Tensor<float>& kernels,
                            const Tensor<float>* bias) {
  p.validate();
  CHAINNN_CHECK(ifmaps.shape() ==
                Shape({p.batch, p.in_channels, p.in_height, p.in_width}));
  CHAINNN_CHECK(kernels.shape() == Shape({p.out_channels,
                                          p.channels_per_group(), p.kernel,
                                          p.kernel}));

  const std::int64_t eh = p.out_height();
  const std::int64_t ew = p.out_width();
  const std::int64_t cg = p.channels_per_group();
  const std::int64_t taps = cg * p.kernel * p.kernel;
  const std::int64_t m_per_g = p.out_channels_per_group();

  Tensor<float> out(Shape{p.batch, p.out_channels, eh, ew});
  for (std::int64_t n = 0; n < p.batch; ++n) {
    for (std::int64_t g = 0; g < p.groups; ++g) {
      const Tensor<float> cols = im2col_image(p, ifmaps, n, g);
      // GEMM: {m_per_g, taps} x {taps, eh*ew}.
      for (std::int64_t mi = 0; mi < m_per_g; ++mi) {
        const std::int64_t m = g * m_per_g + mi;
        for (std::int64_t px = 0; px < eh * ew; ++px) {
          double acc = bias ? double{bias->at_flat(m)} : 0.0;
          for (std::int64_t t = 0; t < taps; ++t) {
            // Kernel row layout matches im2col row layout: (c, ky, kx).
            acc += double{kernels.at_flat(m * taps + t)} *
                   double{cols.at(t, px)};
          }
          out.at(n, m, px / ew, px % ew) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

}  // namespace chainnn::nn
