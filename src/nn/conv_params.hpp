// Convolutional-layer parameterization (paper Table I plus stride /
// padding / grouping, which AlexNet needs).
//
//   N      batch size
//   C / M  number of ifmap / ofmap channels
//   H / W  ifmap spatial size (rows / cols)
//   K      kernel size (square kernels, as in the paper)
//   stride, pad, groups — standard conv extensions (AlexNet conv1 has
//   stride 4; conv2/4/5 are 2-group convolutions)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chainnn::nn {

struct ConvLayerParams {
  std::string name;
  std::int64_t batch = 1;       // N
  std::int64_t in_channels = 1;   // C
  std::int64_t out_channels = 1;  // M
  std::int64_t in_height = 1;     // H
  std::int64_t in_width = 1;      // W
  std::int64_t kernel = 1;        // K
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  std::int64_t groups = 1;
  // Per-axis padding overrides (asymmetric padding between the H and W
  // axes; each axis is still padded symmetrically on both sides). The
  // default -1 inherits `pad`, so square-padded layers read as before.
  std::int64_t pad_h = -1;
  std::int64_t pad_w = -1;

  // Effective padding on the row / column axis.
  [[nodiscard]] std::int64_t pad_rows() const {
    return pad_h >= 0 ? pad_h : pad;
  }
  [[nodiscard]] std::int64_t pad_cols() const {
    return pad_w >= 0 ? pad_w : pad;
  }

  // --- derived quantities --------------------------------------------------
  [[nodiscard]] std::int64_t out_height() const {
    return (in_height + 2 * pad_rows() - kernel) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_width() const {
    return (in_width + 2 * pad_cols() - kernel) / stride + 1;
  }
  // Ifmap channels seen by each output channel (C/groups).
  [[nodiscard]] std::int64_t channels_per_group() const {
    return in_channels / groups;
  }
  [[nodiscard]] std::int64_t out_channels_per_group() const {
    return out_channels / groups;
  }
  // Multiply-accumulates for one image of the batch.
  [[nodiscard]] std::int64_t macs_per_image() const {
    return out_height() * out_width() * out_channels * kernel * kernel *
           channels_per_group();
  }
  [[nodiscard]] std::int64_t macs_total() const {
    return macs_per_image() * batch;
  }
  // Weight words (per layer, all groups).
  [[nodiscard]] std::int64_t weight_count() const {
    return out_channels * channels_per_group() * kernel * kernel;
  }
  [[nodiscard]] std::int64_t ifmap_pixels_per_image() const {
    return in_channels * in_height * in_width;
  }
  [[nodiscard]] std::int64_t ofmap_pixels_per_image() const {
    return out_channels * out_height() * out_width();
  }

  // Throws (CHAINNN_CHECK) if the parameters are inconsistent
  // (e.g. channels not divisible by groups, non-positive dims).
  void validate() const;

  [[nodiscard]] std::string to_string() const;

  // Returns a copy with a different batch size (the experiments sweep N).
  [[nodiscard]] ConvLayerParams with_batch(std::int64_t n) const;

  friend bool operator==(const ConvLayerParams&,
                         const ConvLayerParams&) = default;
};

// Total MACs over a sequence of layers, one image per layer batch setting.
[[nodiscard]] std::int64_t total_macs_per_image(
    const std::vector<ConvLayerParams>& layers);

}  // namespace chainnn::nn
