#include "nn/conv_kernel.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "fixed/fixed16.hpp"
#include "nn/golden.hpp"

namespace chainnn::nn {

namespace {

// Largest |value| in a raw int16 tensor (as int64: |-32768| = 32768).
std::int64_t max_abs(const Tensor<std::int16_t>& t) {
  std::int64_t m = 0;
  for (const std::int16_t v : t.data())
    m = std::max(m, std::abs(static_cast<std::int64_t>(v)));
  return m;
}

}  // namespace

bool simd_kernel_enabled() {
#ifdef CHAINNN_SIMD
  return true;
#else
  return false;
#endif
}

bool saturation_free(const ConvLayerParams& p, std::int64_t max_abs_ifmap,
                     std::int64_t max_abs_kernel) {
  CHAINNN_CHECK(max_abs_ifmap >= 0 && max_abs_ifmap <= 32768 &&
                max_abs_kernel >= 0 && max_abs_kernel <= 32768);
  const std::int64_t taps = p.channels_per_group() * p.kernel * p.kernel;
  const std::int64_t prod = max_abs_ifmap * max_abs_kernel;  // <= 2^30
  if (prod == 0) return true;  // all-zero operand: every sum is 0
  return taps <= fixed::Accumulator48::kMax / prod;
}

Tensor<std::int64_t> conv2d_fixed_accum_fast(
    const ConvLayerParams& p, const Tensor<std::int16_t>& ifmaps,
    const Tensor<std::int16_t>& kernels,
    ArenaAllocator<std::int64_t> alloc) {
  p.validate();
  CHAINNN_CHECK(ifmaps.shape() ==
                Shape({p.batch, p.in_channels, p.in_height, p.in_width}));
  CHAINNN_CHECK(kernels.shape() == Shape({p.out_channels,
                                          p.channels_per_group(), p.kernel,
                                          p.kernel}));

  const std::int64_t oh = p.out_height();
  const std::int64_t ow = p.out_width();
  // Uninit: the (n, m, oy) nest below zero-fills every output row
  // before accumulating into it, so value-initializing here would
  // stream the whole surface through memory twice.
  Tensor<std::int64_t> out(Shape{p.batch, p.out_channels, oh, ow}, Uninit{},
                           alloc);
  const std::int64_t cg = p.channels_per_group();
  const std::int64_t m_per_g = p.out_channels_per_group();
  const std::int64_t h = p.in_height;
  const std::int64_t w = p.in_width;
  const std::int64_t k = p.kernel;
  const std::int64_t s = p.stride;
  const std::int64_t pr = p.pad_rows();
  const std::int64_t pc = p.pad_cols();

  // Same raw-pointer nest as conv2d_fixed_accum but restructured for
  // vectorization: instead of finishing one output at a time, each
  // (n, m, oy) zeroes a row of int64 accumulators and broadcasts one
  // weight across the row's valid output columns (innermost ox loop —
  // unit stride on both the accumulator row and, for stride-1 layers,
  // the ifmap row). Each orow[ox] still receives its taps in the exact
  // (c, ky, kx) order of the scalar reference; with saturation proven
  // impossible the sums are plain int64 arithmetic, so the restructure
  // is bit-exact.
  const std::int16_t* x = ifmaps.data().data();
  const std::int16_t* ker = kernels.data().data();
  std::int64_t* o = out.mutable_data().data();
  for (std::int64_t n = 0; n < p.batch; ++n) {
    const std::int16_t* xn = x + n * p.in_channels * h * w;
    for (std::int64_t m = 0; m < p.out_channels; ++m) {
      const std::int16_t* wm = ker + m * cg * k * k;
      const std::int16_t* xg = xn + (m / m_per_g) * cg * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        std::int64_t* orow = o + ((n * p.out_channels + m) * oh + oy) * ow;
        std::fill(orow, orow + ow, std::int64_t{0});
        const std::int64_t ky_lo = std::max<std::int64_t>(0, pr - oy * s);
        const std::int64_t ky_hi = std::min(k, h + pr - oy * s);
        for (std::int64_t c = 0; c < cg; ++c) {
          const std::int16_t* xc = xg + c * h * w;
          const std::int16_t* wc = wm + c * k * k;
          for (std::int64_t ky = ky_lo; ky < ky_hi; ++ky) {
            const std::int16_t* xrow = xc + (oy * s + ky - pr) * w;
            const std::int16_t* wrow = wc + ky * k;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              // Valid output columns for this tap: ix = ox*s + kx - pc
              // must land in [0, w). Solving for ox gives the
              // contiguous range [ox_lo, ox_hi) — the padding test of
              // the scalar nest, hoisted out of the innermost loop.
              const std::int64_t d = pc - kx;
              const std::int64_t ox_lo = d <= 0 ? 0 : (d + s - 1) / s;
              const std::int64_t num = w - 1 - kx + pc;
              const std::int64_t ox_hi =
                  num < 0 ? 0 : std::min(ow, num / s + 1);
              if (ox_lo >= ox_hi) continue;
              const std::int32_t wv = wrow[kx];
              if (s == 1) {
                // Unit stride: both streams contiguous — the loop the
                // compiler vectorizes. ox_lo >= d keeps the first index
                // non-negative, so only in-bounds pointers are formed.
                const std::int16_t* xp = xrow + (ox_lo - d);
                std::int64_t* op = orow + ox_lo;
                const std::int64_t len = ox_hi - ox_lo;
                for (std::int64_t i = 0; i < len; ++i)
                  op[i] += static_cast<std::int64_t>(
                      static_cast<std::int32_t>(xp[i]) * wv);
              } else {
                for (std::int64_t ox = ox_lo; ox < ox_hi; ++ox)
                  orow[ox] += static_cast<std::int64_t>(
                      static_cast<std::int32_t>(xrow[ox * s - d]) * wv);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor<std::int64_t> conv2d_fixed_accum_dispatch(
    const ConvLayerParams& p, const Tensor<std::int16_t>& ifmaps,
    const Tensor<std::int16_t>& kernels, ConvDispatch* dispatch,
    ArenaAllocator<std::int64_t> alloc) {
  ConvDispatch d;
  if (simd_kernel_enabled()) {
    bool safe = saturation_free(p);
    if (!safe) {
      d.data_scanned = true;
      safe = saturation_free(p, max_abs(ifmaps), max_abs(kernels));
    }
    if (safe) {
      d.fast = true;
      if (dispatch) *dispatch = d;
      return conv2d_fixed_accum_fast(p, ifmaps, kernels, alloc);
    }
  }
  if (dispatch) *dispatch = d;
  return conv2d_fixed_accum(p, ifmaps, kernels);
}

}  // namespace chainnn::nn
