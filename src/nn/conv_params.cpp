#include "nn/conv_params.hpp"

#include <sstream>

#include "common/check.hpp"

namespace chainnn::nn {

void ConvLayerParams::validate() const {
  CHAINNN_CHECK_MSG(batch > 0, to_string());
  CHAINNN_CHECK_MSG(in_channels > 0 && out_channels > 0, to_string());
  CHAINNN_CHECK_MSG(in_height > 0 && in_width > 0, to_string());
  CHAINNN_CHECK_MSG(kernel > 0 && stride > 0 && pad >= 0, to_string());
  CHAINNN_CHECK_MSG(pad_rows() >= 0 && pad_cols() >= 0, to_string());
  CHAINNN_CHECK_MSG(groups > 0, to_string());
  CHAINNN_CHECK_MSG(in_channels % groups == 0,
                    "C=" << in_channels << " not divisible by groups="
                         << groups);
  CHAINNN_CHECK_MSG(out_channels % groups == 0,
                    "M=" << out_channels << " not divisible by groups="
                         << groups);
  CHAINNN_CHECK_MSG(in_height + 2 * pad_rows() >= kernel, to_string());
  CHAINNN_CHECK_MSG(in_width + 2 * pad_cols() >= kernel, to_string());
}

std::string ConvLayerParams::to_string() const {
  std::ostringstream os;
  os << name << ": N=" << batch << " C=" << in_channels
     << " M=" << out_channels << " H=" << in_height << " W=" << in_width
     << " K=" << kernel << " S=" << stride << " P=" << pad_rows();
  if (pad_rows() != pad_cols()) os << "x" << pad_cols();
  os << " G=" << groups << " -> E=" << out_height() << "x" << out_width();
  return os.str();
}

ConvLayerParams ConvLayerParams::with_batch(std::int64_t n) const {
  ConvLayerParams copy = *this;
  copy.batch = n;
  return copy;
}

std::int64_t total_macs_per_image(
    const std::vector<ConvLayerParams>& layers) {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.macs_per_image();
  return total;
}

}  // namespace chainnn::nn
