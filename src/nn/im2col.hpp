// im2col + matrix-multiply convolution — an independent second reference
// implementation used by the tests to cross-check the direct golden model
// (two references that agree make a much stronger oracle for the cycle
// simulator).
#pragma once

#include <cstdint>

#include "nn/conv_params.hpp"
#include "tensor/tensor.hpp"

namespace chainnn::nn {

// Unfolds one image (and one group) of the ifmaps into a
// {C/g*K*K, E_h*E_w} patch matrix. Padding positions are zero-filled.
[[nodiscard]] Tensor<float> im2col_image(const ConvLayerParams& p,
                                         const Tensor<float>& ifmaps,
                                         std::int64_t n, std::int64_t group);

// Full conv via im2col + GEMM; output layout matches conv2d_float.
[[nodiscard]] Tensor<float> conv2d_im2col(const ConvLayerParams& p,
                                          const Tensor<float>& ifmaps,
                                          const Tensor<float>& kernels,
                                          const Tensor<float>* bias = nullptr);

}  // namespace chainnn::nn
