// Golden-model convolutions the hardware simulator is verified against.
//
// Two references:
//   * a float direct convolution (Equation (1) of the paper), and
//   * a fixed-point direct convolution that performs exactly the
//     arithmetic the Chain-NN datapath performs: int16 operands, exact
//     int32 products, 48-bit saturating accumulation, requantization on
//     write-back. The cycle simulator must match this one bit-exactly.
//
// Layouts: ifmaps are {N, C, H, W}; kernels are {M, C/groups, K, K};
// ofmaps are {N, M, E_h, E_w}; biases are {M} (optional).
#pragma once

#include <cstdint>
#include <optional>

#include "fixed/fixed16.hpp"
#include "nn/conv_params.hpp"
#include "tensor/tensor.hpp"

namespace chainnn::nn {

// Direct float convolution. `bias` may be empty (treated as zero).
[[nodiscard]] Tensor<float> conv2d_float(const ConvLayerParams& p,
                                         const Tensor<float>& ifmaps,
                                         const Tensor<float>& kernels,
                                         const Tensor<float>* bias = nullptr);

// Result of the fixed-point reference: wide accumulators before
// requantization (what the psum chain + oMemory hold) and the narrowed
// 16-bit ofmaps (what is written back for the next layer).
struct FixedConvResult {
  Tensor<std::int64_t> accumulators;  // {N, M, E_h, E_w}
  Tensor<std::int16_t> ofmaps;        // {N, M, E_h, E_w}
  fixed::NarrowingStats narrowing;
};

// Direct fixed-point convolution with the Chain-NN datapath semantics.
// `ifmap_fmt`/`kernel_fmt` give the operand Q-formats (used only for the
// requantization shift; the accumulation itself is exact); `out_fmt` is
// the ofmap format. Bias raw values, if given, are in out_fmt and added
// after requantization shift alignment (i.e. bias << (2f_in - f_out)
// before narrowing), matching a pre-accumulated bias in oMemory.
[[nodiscard]] FixedConvResult conv2d_fixed(
    const ConvLayerParams& p, const Tensor<std::int16_t>& ifmaps,
    const Tensor<std::int16_t>& kernels, fixed::FixedFormat ifmap_fmt,
    fixed::FixedFormat kernel_fmt, fixed::FixedFormat out_fmt,
    const Tensor<std::int16_t>* bias = nullptr,
    fixed::Rounding rounding = fixed::Rounding::kNearestEven);

// Computes only the wide accumulators (no requantization); useful for
// bit-exact comparison against the cycle simulator's psum outputs.
[[nodiscard]] Tensor<std::int64_t> conv2d_fixed_accum(
    const ConvLayerParams& p, const Tensor<std::int16_t>& ifmaps,
    const Tensor<std::int16_t>& kernels);

}  // namespace chainnn::nn
