#include "nn/golden.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace chainnn::nn {

Tensor<float> conv2d_float(const ConvLayerParams& p,
                           const Tensor<float>& ifmaps,
                           const Tensor<float>& kernels,
                           const Tensor<float>* bias) {
  p.validate();
  CHAINNN_CHECK(ifmaps.shape() ==
                Shape({p.batch, p.in_channels, p.in_height, p.in_width}));
  CHAINNN_CHECK(kernels.shape() == Shape({p.out_channels,
                                          p.channels_per_group(), p.kernel,
                                          p.kernel}));
  if (bias) CHAINNN_CHECK(bias->shape() == Shape({p.out_channels}));

  Tensor<float> out(Shape{p.batch, p.out_channels, p.out_height(),
                          p.out_width()});
  const std::int64_t cg = p.channels_per_group();
  const std::int64_t m_per_g = p.out_channels_per_group();
  const std::int64_t h = p.in_height;
  const std::int64_t w = p.in_width;
  const std::int64_t k = p.kernel;
  const std::int64_t s = p.stride;
  const std::int64_t pr = p.pad_rows();
  const std::int64_t pc = p.pad_cols();

  // Raw-pointer loop nest, structurally parallel to conv2d_fixed_accum
  // below: the group base pointer hoists the per-output m / m_per_g
  // division, and the padding tests become tap-range bounds outside the
  // kx loop. The double accumulation visits taps in the same (c, ky, kx)
  // order as the accessor nest it replaces, so results are bit-identical.
  const float* x = ifmaps.data().data();
  const float* ker = kernels.data().data();
  float* o = out.mutable_data().data();
  for (std::int64_t n = 0; n < p.batch; ++n) {
    const float* xn = x + n * p.in_channels * h * w;
    for (std::int64_t m = 0; m < p.out_channels; ++m) {
      const float* wm = ker + m * cg * k * k;
      const float* xg = xn + (m / m_per_g) * cg * h * w;
      const double b = bias ? double{bias->at_flat(m)} : 0.0;
      for (std::int64_t oy = 0; oy < p.out_height(); ++oy) {
        const std::int64_t ky_lo = std::max<std::int64_t>(0, pr - oy * s);
        const std::int64_t ky_hi = std::min(k, h + pr - oy * s);
        for (std::int64_t ox = 0; ox < p.out_width(); ++ox) {
          const std::int64_t kx_lo = std::max<std::int64_t>(0, pc - ox * s);
          const std::int64_t kx_hi = std::min(k, w + pc - ox * s);
          const std::int64_t ix0 = ox * s - pc;
          double acc = b;
          for (std::int64_t c = 0; c < cg; ++c) {
            const float* xc = xg + c * h * w;
            const float* wc = wm + c * k * k;
            for (std::int64_t ky = ky_lo; ky < ky_hi; ++ky) {
              const float* xrow = xc + (oy * s + ky - pr) * w;
              const float* wrow = wc + ky * k;
              for (std::int64_t kx = kx_lo; kx < kx_hi; ++kx)
                acc += double{xrow[ix0 + kx]} * double{wrow[kx]};
            }
          }
          *o++ = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor<std::int64_t> conv2d_fixed_accum(const ConvLayerParams& p,
                                        const Tensor<std::int16_t>& ifmaps,
                                        const Tensor<std::int16_t>& kernels) {
  p.validate();
  CHAINNN_CHECK(ifmaps.shape() ==
                Shape({p.batch, p.in_channels, p.in_height, p.in_width}));
  CHAINNN_CHECK(kernels.shape() == Shape({p.out_channels,
                                          p.channels_per_group(), p.kernel,
                                          p.kernel}));

  Tensor<std::int64_t> out(Shape{p.batch, p.out_channels, p.out_height(),
                                 p.out_width()});
  const std::int64_t cg = p.channels_per_group();
  const std::int64_t m_per_g = p.out_channels_per_group();
  const std::int64_t h = p.in_height;
  const std::int64_t w = p.in_width;
  const std::int64_t k = p.kernel;
  const std::int64_t s = p.stride;
  const std::int64_t pr = p.pad_rows();
  const std::int64_t pc = p.pad_cols();

  // Raw-pointer loop nest (this is the analytical engine's hot path). The
  // accumulation order over (c, ky, kx) and the per-MAC sticky 48-bit
  // saturation are exactly Accumulator48::mac's, so the result is
  // bit-identical to the accessor-based reference it replaces; the padding
  // tests are hoisted out of the kx loop as tap-range bounds.
  const std::int16_t* x = ifmaps.data().data();
  const std::int16_t* ker = kernels.data().data();
  std::int64_t* o = out.mutable_data().data();
  for (std::int64_t n = 0; n < p.batch; ++n) {
    const std::int16_t* xn = x + n * p.in_channels * h * w;
    for (std::int64_t m = 0; m < p.out_channels; ++m) {
      const std::int16_t* wm = ker + m * cg * k * k;
      const std::int16_t* xg = xn + (m / m_per_g) * cg * h * w;
      for (std::int64_t oy = 0; oy < p.out_height(); ++oy) {
        const std::int64_t ky_lo = std::max<std::int64_t>(0, pr - oy * s);
        const std::int64_t ky_hi = std::min(k, h + pr - oy * s);
        for (std::int64_t ox = 0; ox < p.out_width(); ++ox) {
          const std::int64_t kx_lo = std::max<std::int64_t>(0, pc - ox * s);
          const std::int64_t kx_hi = std::min(k, w + pc - ox * s);
          // Column offset of tap kx into the ifmap row; ix0 + kx_lo >= 0,
          // so only in-bounds pointers/indices are ever formed (forming a
          // pointer before the buffer would itself be UB).
          const std::int64_t ix0 = ox * s - pc;
          std::int64_t acc = 0;
          for (std::int64_t c = 0; c < cg; ++c) {
            const std::int16_t* xc = xg + c * h * w;
            const std::int16_t* wc = wm + c * k * k;
            for (std::int64_t ky = ky_lo; ky < ky_hi; ++ky) {
              const std::int16_t* xrow = xc + (oy * s + ky - pr) * w;
              const std::int16_t* wrow = wc + ky * k;
              for (std::int64_t kx = kx_lo; kx < kx_hi; ++kx) {
                acc += static_cast<std::int64_t>(
                    static_cast<std::int32_t>(xrow[ix0 + kx]) *
                    static_cast<std::int32_t>(wrow[kx]));
                if (acc > fixed::Accumulator48::kMax)
                  acc = fixed::Accumulator48::kMax;
                else if (acc < fixed::Accumulator48::kMin)
                  acc = fixed::Accumulator48::kMin;
              }
            }
          }
          *o++ = acc;
        }
      }
    }
  }
  return out;
}

FixedConvResult conv2d_fixed(const ConvLayerParams& p,
                             const Tensor<std::int16_t>& ifmaps,
                             const Tensor<std::int16_t>& kernels,
                             fixed::FixedFormat ifmap_fmt,
                             fixed::FixedFormat kernel_fmt,
                             fixed::FixedFormat out_fmt,
                             const Tensor<std::int16_t>* bias,
                             fixed::Rounding rounding) {
  FixedConvResult res;
  res.accumulators = conv2d_fixed_accum(p, ifmaps, kernels);
  if (bias) CHAINNN_CHECK(bias->shape() == Shape({p.out_channels}));

  const int acc_frac = ifmap_fmt.frac_bits + kernel_fmt.frac_bits;
  res.ofmaps = Tensor<std::int16_t>(res.accumulators.shape());
  const std::int64_t plane = p.out_height() * p.out_width();
  for (std::int64_t i = 0; i < res.accumulators.num_elements(); ++i) {
    std::int64_t acc = res.accumulators.at_flat(i);
    if (bias) {
      // Bias is stored in out_fmt; align it to the accumulator's fraction
      // count before narrowing, as a bias pre-load in oMemory would be.
      const std::int64_t m = (i / plane) % p.out_channels;
      const int align = acc_frac - out_fmt.frac_bits;
      acc += fixed::shift_right_rounded(
          static_cast<std::int64_t>(bias->at_flat(m)), -align, rounding);
    }
    res.ofmaps.at_flat(i) = fixed::narrow_to_fixed16(
        acc, acc_frac, out_fmt, rounding, fixed::Overflow::kSaturate,
        &res.narrowing);
  }
  return res;
}

}  // namespace chainnn::nn
