#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace chainnn::nn {

namespace {

template <typename T>
void relu_impl(Tensor<T>& t) {
  for (T& v : t.mutable_data())
    if (v < T{}) v = T{};
}

template <typename T>
Tensor<T> max_pool_impl(const Tensor<T>& in, const PoolParams& p) {
  CHAINNN_CHECK(in.shape().rank() == 4);
  const std::int64_t n = in.shape().dim(0);
  const std::int64_t c = in.shape().dim(1);
  const std::int64_t h = in.shape().dim(2);
  const std::int64_t w = in.shape().dim(3);
  const std::int64_t eh = p.out_size(h);
  const std::int64_t ew = p.out_size(w);
  CHAINNN_CHECK_MSG(eh > 0 && ew > 0, "pool output empty");

  Tensor<T> out(Shape{n, c, eh, ew});
  for (std::int64_t ni = 0; ni < n; ++ni)
    for (std::int64_t ci = 0; ci < c; ++ci)
      for (std::int64_t oy = 0; oy < eh; ++oy)
        for (std::int64_t ox = 0; ox < ew; ++ox) {
          T best = std::numeric_limits<T>::lowest();
          for (std::int64_t ky = 0; ky < p.window; ++ky) {
            const std::int64_t iy = oy * p.stride + ky - p.pad;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < p.window; ++kx) {
              const std::int64_t ix = ox * p.stride + kx - p.pad;
              if (ix < 0 || ix >= w) continue;
              best = std::max(best, in.at(ni, ci, iy, ix));
            }
          }
          out.at(ni, ci, oy, ox) = best;
        }
  return out;
}

}  // namespace

void relu_inplace(Tensor<float>& t) { relu_impl(t); }
void relu_inplace(Tensor<std::int16_t>& t) { relu_impl(t); }

Tensor<float> max_pool(const Tensor<float>& in, const PoolParams& p) {
  return max_pool_impl(in, p);
}
Tensor<std::int16_t> max_pool(const Tensor<std::int16_t>& in,
                              const PoolParams& p) {
  return max_pool_impl(in, p);
}

Tensor<float> avg_pool(const Tensor<float>& in, const PoolParams& p) {
  CHAINNN_CHECK(in.shape().rank() == 4);
  const std::int64_t n = in.shape().dim(0);
  const std::int64_t c = in.shape().dim(1);
  const std::int64_t h = in.shape().dim(2);
  const std::int64_t w = in.shape().dim(3);
  const std::int64_t eh = p.out_size(h);
  const std::int64_t ew = p.out_size(w);
  CHAINNN_CHECK_MSG(eh > 0 && ew > 0, "pool output empty");

  Tensor<float> out(Shape{n, c, eh, ew});
  const double area = static_cast<double>(p.window * p.window);
  for (std::int64_t ni = 0; ni < n; ++ni)
    for (std::int64_t ci = 0; ci < c; ++ci)
      for (std::int64_t oy = 0; oy < eh; ++oy)
        for (std::int64_t ox = 0; ox < ew; ++ox) {
          double sum = 0.0;
          for (std::int64_t ky = 0; ky < p.window; ++ky) {
            const std::int64_t iy = oy * p.stride + ky - p.pad;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < p.window; ++kx) {
              const std::int64_t ix = ox * p.stride + kx - p.pad;
              if (ix < 0 || ix >= w) continue;
              sum += double{in.at(ni, ci, iy, ix)};
            }
          }
          out.at(ni, ci, oy, ox) = static_cast<float>(sum / area);
        }
  return out;
}

Tensor<float> lrn_across_channels(const Tensor<float>& in,
                                  std::int64_t local_size, double alpha,
                                  double beta, double k) {
  CHAINNN_CHECK(in.shape().rank() == 4);
  CHAINNN_CHECK(local_size > 0);
  const std::int64_t n = in.shape().dim(0);
  const std::int64_t c = in.shape().dim(1);
  const std::int64_t h = in.shape().dim(2);
  const std::int64_t w = in.shape().dim(3);
  const std::int64_t half = local_size / 2;

  Tensor<float> out(in.shape());
  for (std::int64_t ni = 0; ni < n; ++ni)
    for (std::int64_t ci = 0; ci < c; ++ci)
      for (std::int64_t y = 0; y < h; ++y)
        for (std::int64_t x = 0; x < w; ++x) {
          double sumsq = 0.0;
          const std::int64_t lo = std::max<std::int64_t>(0, ci - half);
          const std::int64_t hi = std::min(c - 1, ci + half);
          for (std::int64_t cj = lo; cj <= hi; ++cj) {
            const double v = double{in.at(ni, cj, y, x)};
            sumsq += v * v;
          }
          const double denom =
              std::pow(k + alpha / static_cast<double>(local_size) * sumsq,
                       beta);
          out.at(ni, ci, y, x) =
              static_cast<float>(double{in.at(ni, ci, y, x)} / denom);
        }
  return out;
}

}  // namespace chainnn::nn
