// Model zoo: the convolutional-layer shapes of the four networks the
// paper evaluates with (§V.A: MNIST, Cifar-10, AlexNet, VGG-16).
//
// Weight values are synthetic (the accelerator's timing/energy behaviour
// depends only on shapes; numerics are validated separately against the
// golden models) — see DESIGN.md §2 for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "nn/conv_params.hpp"

namespace chainnn::nn {

struct NetworkModel {
  std::string name;
  std::vector<ConvLayerParams> conv_layers;

  [[nodiscard]] std::int64_t macs_per_image() const {
    return total_macs_per_image(conv_layers);
  }
};

// AlexNet's five convolutional layers for 227x227 inputs (the paper's
// workload; 666M MACs per image, which tests assert).
[[nodiscard]] NetworkModel alexnet();

// VGG-16's thirteen convolutional layers for 224x224 inputs.
[[nodiscard]] NetworkModel vgg16();

// LeNet-style MNIST network (MatConvNet example shapes, 28x28 inputs).
[[nodiscard]] NetworkModel lenet_mnist();

// CIFAR-10 "quick" network (MatConvNet example shapes, 32x32 inputs).
[[nodiscard]] NetworkModel cifar10_quick();

// All four, for sweep-style experiments.
[[nodiscard]] std::vector<NetworkModel> model_zoo();

// Looks up a model by name ("alexnet", "vgg16", "lenet", "cifar10");
// throws on unknown names listing the valid ones.
[[nodiscard]] NetworkModel model_by_name(const std::string& name);

}  // namespace chainnn::nn
