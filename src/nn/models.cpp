#include "nn/models.hpp"

#include "common/check.hpp"
#include "common/strings.hpp"

namespace chainnn::nn {

namespace {

ConvLayerParams layer(std::string name, std::int64_t c, std::int64_t m,
                      std::int64_t hw, std::int64_t k, std::int64_t stride,
                      std::int64_t pad, std::int64_t groups) {
  ConvLayerParams p;
  p.name = std::move(name);
  p.in_channels = c;
  p.out_channels = m;
  p.in_height = hw;
  p.in_width = hw;
  p.kernel = k;
  p.stride = stride;
  p.pad = pad;
  p.groups = groups;
  p.validate();
  return p;
}

}  // namespace

NetworkModel alexnet() {
  NetworkModel net;
  net.name = "alexnet";
  net.conv_layers = {
      layer("conv1", 3, 96, 227, 11, 4, 0, 1),
      layer("conv2", 96, 256, 27, 5, 1, 2, 2),
      layer("conv3", 256, 384, 13, 3, 1, 1, 1),
      layer("conv4", 384, 384, 13, 3, 1, 1, 2),
      layer("conv5", 384, 256, 13, 3, 1, 1, 2),
  };
  return net;
}

NetworkModel vgg16() {
  NetworkModel net;
  net.name = "vgg16";
  net.conv_layers = {
      layer("conv1_1", 3, 64, 224, 3, 1, 1, 1),
      layer("conv1_2", 64, 64, 224, 3, 1, 1, 1),
      layer("conv2_1", 64, 128, 112, 3, 1, 1, 1),
      layer("conv2_2", 128, 128, 112, 3, 1, 1, 1),
      layer("conv3_1", 128, 256, 56, 3, 1, 1, 1),
      layer("conv3_2", 256, 256, 56, 3, 1, 1, 1),
      layer("conv3_3", 256, 256, 56, 3, 1, 1, 1),
      layer("conv4_1", 256, 512, 28, 3, 1, 1, 1),
      layer("conv4_2", 512, 512, 28, 3, 1, 1, 1),
      layer("conv4_3", 512, 512, 28, 3, 1, 1, 1),
      layer("conv5_1", 512, 512, 14, 3, 1, 1, 1),
      layer("conv5_2", 512, 512, 14, 3, 1, 1, 1),
      layer("conv5_3", 512, 512, 14, 3, 1, 1, 1),
  };
  return net;
}

NetworkModel lenet_mnist() {
  NetworkModel net;
  net.name = "lenet";
  net.conv_layers = {
      layer("conv1", 1, 20, 28, 5, 1, 0, 1),
      layer("conv2", 20, 50, 12, 5, 1, 0, 1),
      layer("conv3", 50, 500, 4, 4, 1, 0, 1),
      layer("conv4", 500, 10, 1, 1, 1, 0, 1),
  };
  return net;
}

NetworkModel cifar10_quick() {
  NetworkModel net;
  net.name = "cifar10";
  net.conv_layers = {
      layer("conv1", 3, 32, 32, 5, 1, 2, 1),
      layer("conv2", 32, 32, 16, 5, 1, 2, 1),
      layer("conv3", 32, 64, 8, 5, 1, 2, 1),
  };
  return net;
}

std::vector<NetworkModel> model_zoo() {
  return {lenet_mnist(), cifar10_quick(), alexnet(), vgg16()};
}

NetworkModel model_by_name(const std::string& name) {
  if (name == "alexnet") return alexnet();
  if (name == "vgg16") return vgg16();
  if (name == "lenet" || name == "mnist") return lenet_mnist();
  if (name == "cifar10" || name == "cifar") return cifar10_quick();
  CHAINNN_CHECK_MSG(false, "unknown model '"
                               << name
                               << "'; valid: alexnet vgg16 lenet cifar10");
  return {};  // unreachable
}

}  // namespace chainnn::nn
