// Vectorized fixed-point convolution with a proven saturation-free fast
// path (ROADMAP item 3).
//
// conv2d_fixed_accum (nn/golden.cpp) applies Accumulator48's sticky
// 48-bit saturation after every MAC, which defeats autovectorization:
// the compiler may not reassociate a chain of clamped additions. But
// saturation is a property the layer can be *proven* free of before
// running it: with T = channels_per_group * K * K taps per output and
// operand magnitudes bounded by max|x| and max|w|, every intermediate
// partial sum satisfies |sum| <= T * max|x| * max|w|. If that bound is
// <= Accumulator48::kMax, no step of the scalar reference can clamp
// (kMin = -(kMax + 1), so checking against kMax covers both signs), the
// accumulation is plain int64 arithmetic — exact and associative — and
// a reassociated, vectorizable kernel produces bit-identical results.
//
// The static bound uses max|x| = max|w| = 2^15 (|int16| <= 32768), which
// admits every layer with T <= kMax / 2^30 = 131071 taps — all of
// AlexNet/VGG and far beyond. Layers that fail it get one cheap operand
// scan to tighten the bound with the tensors' real magnitudes; only if
// that also fails (saturation genuinely possible) does the dispatcher
// fall back to the exact scalar sticky-clamp path.
//
// The CHAINNN_SIMD CMake knob (default ON) gates the dispatcher; OFF
// forces the scalar path everywhere so the two configurations can be
// diffed end to end (CI builds both).
#pragma once

#include <cstdint>

#include "nn/conv_params.hpp"
#include "tensor/tensor.hpp"

namespace chainnn::nn {

// Whether the library was built with the vectorized fast path enabled
// (CHAINNN_SIMD=ON). When false, conv2d_fixed_accum_dispatch always
// takes the scalar reference.
[[nodiscard]] bool simd_kernel_enabled();

// How one conv2d_fixed_accum_dispatch call was routed.
struct ConvDispatch {
  bool fast = false;          // vectorized clamp-free kernel ran
  bool data_scanned = false;  // static bound failed; operand scan decided
};

// Conservative proof that no intermediate accumulation step of the
// scalar reference can saturate: taps * max_abs_ifmap * max_abs_kernel
// <= Accumulator48::kMax (evaluated by division so the product cannot
// itself overflow int64). Magnitudes default to the int16 worst case
// 2^15; pass scanned maxima to tighten the bound.
[[nodiscard]] bool saturation_free(const ConvLayerParams& p,
                                   std::int64_t max_abs_ifmap = 32768,
                                   std::int64_t max_abs_kernel = 32768);

// Clamp-free row-accumulation kernel. Bit-identical to
// conv2d_fixed_accum *provided* saturation_free() holds for the actual
// operands (each output's taps are accumulated in the same (c, ky, kx)
// order, and without saturation that order computes the same exact
// int64 sum). Callers should go through conv2d_fixed_accum_dispatch,
// which performs the proof; this entry point exists for the kernel
// micro-benchmark and the property tests.
// `alloc` sources the output surface (default: heap); the kernel writes
// every element (each row is zero-filled before accumulation), so the
// allocation is uninitialized.
[[nodiscard]] Tensor<std::int64_t> conv2d_fixed_accum_fast(
    const ConvLayerParams& p, const Tensor<std::int16_t>& ifmaps,
    const Tensor<std::int16_t>& kernels,
    ArenaAllocator<std::int64_t> alloc = {});

// Dispatcher used by the analytical engine: the fast kernel when the
// build enables it and the layer is provably saturation-free (static
// bound first, one operand scan to tighten if needed), else the exact
// scalar sticky-clamp reference. Always bit-identical to
// conv2d_fixed_accum. `dispatch`, if non-null, receives the routing
// decision for RunStats accounting.
// `alloc` is honoured on the fast path only (the scalar reference owns
// its allocation); results are bit-identical either way.
[[nodiscard]] Tensor<std::int64_t> conv2d_fixed_accum_dispatch(
    const ConvLayerParams& p, const Tensor<std::int16_t>& ifmaps,
    const Tensor<std::int16_t>& kernels, ConvDispatch* dispatch = nullptr,
    ArenaAllocator<std::int64_t> alloc = {});

}  // namespace chainnn::nn
