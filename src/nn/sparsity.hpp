// Operand-sparsity analysis for zero-gating studies.
//
// The paper's related work ([13] Cnvlutin, [14] EIE) exploits zero
// operands; Chain-NN itself does not, but because ReLU feeds every conv
// layer after the first, a large share of its MACs have a zero ifmap
// operand. These helpers count them exactly so the energy model can
// quantify what per-PE zero-gating (multiplier operand isolation) would
// save — an ablation of the paper's design space.
#pragma once

#include <cstdint>

#include "nn/conv_params.hpp"
#include "tensor/tensor.hpp"

namespace chainnn::nn {

struct ZeroMacStats {
  std::int64_t total_macs = 0;       // real MACs (padding taps excluded)
  std::int64_t zero_ifmap_macs = 0;  // ifmap operand == 0
  std::int64_t zero_kernel_macs = 0; // kernel operand == 0
  std::int64_t zero_macs = 0;        // either operand == 0

  [[nodiscard]] double zero_fraction() const {
    return total_macs == 0
               ? 0.0
               : static_cast<double>(zero_macs) /
                     static_cast<double>(total_macs);
  }
};

// Exact zero-operand MAC count for one layer (the chain performs exactly
// these MACs — verified bit-exact — so this is the hardware's count).
[[nodiscard]] ZeroMacStats count_zero_macs(const ConvLayerParams& p,
                                           const Tensor<std::int16_t>& ifmaps,
                                           const Tensor<std::int16_t>& kernels);

// Fraction of zero elements in a tensor.
[[nodiscard]] double zero_element_fraction(const Tensor<std::int16_t>& t);

// Zeroes a deterministic pseudo-random subset of elements so studies can
// sweep activation sparsity levels.
void inject_sparsity(Tensor<std::int16_t>& t, double target_fraction,
                     std::uint64_t seed);

}  // namespace chainnn::nn
