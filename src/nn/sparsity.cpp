#include "nn/sparsity.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace chainnn::nn {

ZeroMacStats count_zero_macs(const ConvLayerParams& p,
                             const Tensor<std::int16_t>& ifmaps,
                             const Tensor<std::int16_t>& kernels) {
  p.validate();
  CHAINNN_CHECK(ifmaps.shape() ==
                Shape({p.batch, p.in_channels, p.in_height, p.in_width}));
  CHAINNN_CHECK(kernels.shape() == Shape({p.out_channels,
                                          p.channels_per_group(), p.kernel,
                                          p.kernel}));
  ZeroMacStats s;
  const std::int64_t cg = p.channels_per_group();
  const std::int64_t m_per_g = p.out_channels_per_group();
  for (std::int64_t n = 0; n < p.batch; ++n) {
    for (std::int64_t m = 0; m < p.out_channels; ++m) {
      const std::int64_t g = m / m_per_g;
      for (std::int64_t oy = 0; oy < p.out_height(); ++oy) {
        for (std::int64_t ox = 0; ox < p.out_width(); ++ox) {
          for (std::int64_t c = 0; c < cg; ++c) {
            for (std::int64_t ky = 0; ky < p.kernel; ++ky) {
              const std::int64_t iy = oy * p.stride + ky - p.pad_rows();
              if (iy < 0 || iy >= p.in_height) continue;
              for (std::int64_t kx = 0; kx < p.kernel; ++kx) {
                const std::int64_t ix = ox * p.stride + kx - p.pad_cols();
                if (ix < 0 || ix >= p.in_width) continue;
                const bool xz = ifmaps.at(n, g * cg + c, iy, ix) == 0;
                const bool wz = kernels.at(m, c, ky, kx) == 0;
                ++s.total_macs;
                if (xz) ++s.zero_ifmap_macs;
                if (wz) ++s.zero_kernel_macs;
                if (xz || wz) ++s.zero_macs;
              }
            }
          }
        }
      }
    }
  }
  return s;
}

double zero_element_fraction(const Tensor<std::int16_t>& t) {
  if (t.num_elements() == 0) return 0.0;
  std::int64_t zeros = 0;
  for (const std::int16_t v : t.data())
    if (v == 0) ++zeros;
  return static_cast<double>(zeros) /
         static_cast<double>(t.num_elements());
}

void inject_sparsity(Tensor<std::int16_t>& t, double target_fraction,
                     std::uint64_t seed) {
  CHAINNN_CHECK(target_fraction >= 0.0 && target_fraction <= 1.0);
  Rng rng(seed);
  for (std::int16_t& v : t.mutable_data())
    if (rng.next_double() < target_fraction) v = 0;
}

}  // namespace chainnn::nn
